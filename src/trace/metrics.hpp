/**
 * @file
 * Metrics registry: the time-series half of the observability plane.
 *
 * A Registry holds named metrics — monotonic counters, set gauges,
 * sampled gauges (a callback evaluated at snapshot time), and fixed-bin
 * histograms — and appends one Snapshot of every metric each time
 * sample() is called. Hook sites hold raw slot handles, so recording is
 * a single integer add with no lookup; components that already keep
 * their own counters are read through sampled gauges instead, which
 * costs the hot path nothing at all.
 *
 * Determinism contract (see DESIGN.md "Observability plane"): every
 * value in a snapshot derives from simulator state at an exact tick,
 * never from wall-clock or allocation addresses, so a (seed, config)
 * pair fully determines the series. Per-replication series from a
 * sweep merge in replication-index order (MetricsSeries::merge via
 * sweep::runSweepFold), making the merged series bit-identical at any
 * thread count.
 *
 * Snapshots flatten every metric to a double column: counters and
 * gauges report their value, histograms report their cumulative sample
 * count (full bin contents appear in the JSON export only — a
 * time-series of distributions does not fit a CSV column).
 */

#ifndef BLITZ_TRACE_METRICS_HPP
#define BLITZ_TRACE_METRICS_HPP

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace blitz::trace {

/** How a metric accumulates and what its snapshot column means. */
enum class MetricKind : std::uint8_t
{
    Counter,   ///< monotonic u64, bumped by hook sites
    Gauge,     ///< last-set double
    Sampled,   ///< callback evaluated at snapshot time
    Histogram, ///< fixed-bin distribution; column = cumulative count
};

const char *metricKindName(MetricKind k);

/** Hot-path handle to a counter slot (8-byte add, no lookup). */
class Counter
{
  public:
    Counter() = default;

    void
    add(std::uint64_t n = 1)
    {
        *slot_ += n;
    }

    std::uint64_t value() const { return *slot_; }

  private:
    friend class Registry;
    explicit Counter(std::uint64_t *slot) : slot_(slot) {}
    std::uint64_t *slot_ = nullptr;
};

/** Hot-path handle to a gauge slot. */
class Gauge
{
  public:
    Gauge() = default;

    void set(double v) { *slot_ = v; }
    double value() const { return *slot_; }

  private:
    friend class Registry;
    explicit Gauge(double *slot) : slot_(slot) {}
    double *slot_ = nullptr;
};

/** One row of the series: every metric flattened at one tick. */
struct Snapshot
{
    sim::Tick tick = 0;
    std::vector<double> values; ///< schema order
};

/** Name + kind of one column, in registration order. */
struct MetricDesc
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
};

/**
 * Detached snapshot series: the schema plus the sampled rows, without
 * the live slots. This is what sweep trials return and what the fold
 * merges; Registry::series() exposes its own rows in the same shape.
 */
class MetricsSeries
{
  public:
    const std::vector<MetricDesc> &schema() const { return schema_; }
    const std::vector<Snapshot> &snapshots() const { return rows_; }

    /**
     * Number of replications folded into each row (1 for a plain
     * registry series). Rows beyond a short replication's end keep the
     * coverage of the replications that reached them.
     */
    const std::vector<std::uint32_t> &coverage() const { return cov_; }

    bool empty() const { return rows_.empty(); }

    /**
     * Fold another replication's series into this one.
     *
     * Schemas must match. Rows align by index: where both series have
     * a row the ticks must agree and the values are summed column-wise
     * (downstream divides by coverage() for per-replication means);
     * the longer series' tail is appended as-is. Folding in
     * replication-index order — what sweep::runSweepFold guarantees —
     * therefore yields a bit-identical result at any thread count.
     */
    void merge(const MetricsSeries &other);

    /** "tick,cov,<name>..." header plus one row per snapshot. */
    void writeCsv(std::ostream &os) const;

    /** Schema + rows as one JSON object. */
    void writeJson(std::ostream &os) const;

  private:
    friend class Registry;
    std::vector<MetricDesc> schema_;
    std::vector<Snapshot> rows_;
    std::vector<std::uint32_t> cov_;
};

/**
 * Named-metric registry with snapshot recording.
 *
 * Registration order defines the column order; register everything
 * before the first sample() — adding a metric afterwards panics, since
 * earlier rows would be missing the column.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Register a counter; the handle stays valid for the Registry's life. */
    Counter counter(std::string name);

    /** Register a gauge. */
    Gauge gauge(std::string name);

    /** Register a gauge evaluated by callback at each sample(). */
    void sampled(std::string name, std::function<double()> fn);

    /** Register a histogram; add() samples through the returned pointer. */
    sim::Histogram *histogram(std::string name, double lo, double hi,
                              std::size_t bins);

    std::size_t metricCount() const { return schema_.size(); }
    const std::vector<MetricDesc> &schema() const { return schema_; }

    /** Append one snapshot of every metric at @p tick. */
    void sample(sim::Tick tick);

    /** Rows recorded so far. */
    const std::vector<Snapshot> &snapshots() const
    {
        return series_.rows_;
    }

    /**
     * Observer invoked after each sample() with the appended row —
     * the invariant tests hang their per-snapshot assertions here.
     */
    std::function<void(const Snapshot &)> onSample;

    /** Copy out the recorded series (schema + rows, coverage 1). */
    MetricsSeries series() const;

    /** Move out the recorded series, leaving the registry empty of rows. */
    MetricsSeries takeSeries();

    /** CSV of the recorded series (see MetricsSeries::writeCsv). */
    void writeCsv(std::ostream &os) const;

    /**
     * JSON of the recorded series plus, unlike the CSV, the full bin
     * contents of every histogram at their final state.
     */
    void writeJson(std::ostream &os) const;

  private:
    void addMetric(std::string name, MetricKind kind);

    std::vector<MetricDesc> schema_;
    /** Parallel to schema_: which slot index backs each column. */
    std::vector<std::size_t> slotOf_;
    // Deques keep slot addresses stable across registration.
    std::deque<std::uint64_t> counterSlots_;
    std::deque<double> gaugeSlots_;
    std::vector<std::function<double()>> sampledFns_;
    std::deque<sim::Histogram> histSlots_;
    MetricsSeries series_;
};

} // namespace blitz::trace

#endif // BLITZ_TRACE_METRICS_HPP
