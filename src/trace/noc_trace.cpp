#include "noc_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace blitz::trace {

NocTrace::NocTrace(Registry &reg, std::size_t linkCount,
                   sim::Tick hopLatency, double latencyHi)
    : linkHops_(linkCount, 0), hopLatency_(hopLatency),
      hops_(reg.counter("noc.hops")),
      delivered_(reg.counter("noc.delivered")),
      dropped_(reg.counter("noc.dropped")),
      latency_(reg.histogram("noc.latency_ticks", 0.0, latencyHi, 32))
{
}

double
NocTrace::linkUtilization(std::size_t link, sim::Tick elapsed) const
{
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(linkHops_[link] * hopLatency_) /
           static_cast<double>(elapsed);
}

double
NocTrace::maxLinkUtilization(sim::Tick elapsed) const
{
    std::uint64_t peak = 0;
    for (std::uint64_t h : linkHops_)
        peak = std::max(peak, h);
    if (elapsed == 0)
        return 0.0;
    return static_cast<double>(peak * hopLatency_) /
           static_cast<double>(elapsed);
}

double
NocTrace::meanLinkUtilization(sim::Tick elapsed) const
{
    if (elapsed == 0 || linkHops_.empty())
        return 0.0;
    std::uint64_t sum = 0;
    for (std::uint64_t h : linkHops_)
        sum += h;
    return static_cast<double>(sum * hopLatency_) /
           (static_cast<double>(elapsed) *
            static_cast<double>(linkHops_.size()));
}

void
NocTrace::writeLinkCsv(std::ostream &os, sim::Tick elapsed) const
{
    os << "link,hops,utilization\n";
    for (std::size_t i = 0; i < linkHops_.size(); ++i) {
        os << i << ',' << linkHops_[i] << ',';
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g",
                      linkUtilization(i, elapsed));
        os << buf << '\n';
    }
}

} // namespace blitz::trace
