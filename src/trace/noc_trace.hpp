/**
 * @file
 * NoC instrumentation probe.
 *
 * noc::Network holds a `NocTrace *` (null by default — the disabled
 * path is the same one-branch cost as a cleared fault hook) and calls
 * onHop / onDeliver / onDrop from the hot paths. The probe accumulates
 * per-link crossing counts in a flat array (no registry column per
 * link — a 6x6 mesh has 864 of them) plus aggregate registry metrics:
 * hop/delivery/drop counters and an end-to-end latency histogram.
 *
 * Per-link utilization over an observation window is
 *   crossings * hopLatency / elapsedTicks
 * computed on demand; writeLinkCsv() exports the full per-link table.
 *
 * This header deliberately depends only on sim + trace types (link
 * indices and node ids arrive as plain integers), so trace never needs
 * to link against noc.
 */

#ifndef BLITZ_TRACE_NOC_TRACE_HPP
#define BLITZ_TRACE_NOC_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "metrics.hpp"
#include "sim/types.hpp"

namespace blitz::trace {

/** Hot-path NoC probe; see file comment. */
class NocTrace
{
  public:
    /**
     * @param reg registry receiving the aggregate metrics.
     * @param linkCount number of (node, dir, plane) link slots.
     * @param hopLatency cycles one crossing occupies a link.
     * @param latencyHi upper edge of the end-to-end latency histogram.
     */
    NocTrace(Registry &reg, std::size_t linkCount, sim::Tick hopLatency,
             double latencyHi = 1024.0);

    /** A flit crossed link @p link departing at @p depart. */
    void
    onHop(std::size_t link, sim::Tick depart)
    {
        (void)depart;
        ++linkHops_[link];
        hops_.add();
    }

    /** A packet reached its endpoint handler. */
    void
    onDeliver(std::uint32_t at, int msgType, sim::Tick inject,
              sim::Tick now)
    {
        (void)at;
        (void)msgType;
        delivered_.add();
        latency_->add(static_cast<double>(now - inject));
    }

    /** A packet was discarded (fault hook verdict). */
    void
    onDrop(std::uint32_t at, int msgType, sim::Tick now)
    {
        (void)at;
        (void)msgType;
        (void)now;
        dropped_.add();
    }

    const std::vector<std::uint64_t> &linkHops() const
    {
        return linkHops_;
    }

    /** Busy fraction of @p link over the first @p elapsed ticks. */
    double linkUtilization(std::size_t link, sim::Tick elapsed) const;

    /** Highest per-link busy fraction over @p elapsed ticks. */
    double maxLinkUtilization(sim::Tick elapsed) const;

    /** Mean busy fraction across all links over @p elapsed ticks. */
    double meanLinkUtilization(sim::Tick elapsed) const;

    /** "link,hops,utilization" rows for every link slot. */
    void writeLinkCsv(std::ostream &os, sim::Tick elapsed) const;

  private:
    std::vector<std::uint64_t> linkHops_;
    sim::Tick hopLatency_;
    Counter hops_;
    Counter delivered_;
    Counter dropped_;
    sim::Histogram *latency_; ///< owned by the registry
};

} // namespace blitz::trace

#endif // BLITZ_TRACE_NOC_TRACE_HPP
