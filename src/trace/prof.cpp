#include "prof.hpp"

#include <cstdio>

#include "health.hpp"
#include "tracer.hpp"

namespace blitz::trace {

namespace {

std::string
shardKey(std::string_view prefix, std::uint32_t shard,
         const char *field)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%.*s/shard%u.%s",
                  static_cast<int>(prefix.size()), prefix.data(), shard,
                  field);
    return buf;
}

constexpr double kNsPerMs = 1e6;

} // namespace

void
SuperstepProfiler::attach(sim::ShardGroup &group)
{
    detach();
    probe_.init(group.shards(), opts_.sampleStride, opts_.maxSamples);
    group.attachProbe(&probe_);
    group_ = &group;
}

void
SuperstepProfiler::detach()
{
    if (group_) {
        group_->attachProbe(nullptr);
        group_ = nullptr;
    }
}

void
SuperstepProfiler::emitCounterTracks(Tracer &tracer,
                                     const std::string &prefix) const
{
    const std::uint32_t shards =
        static_cast<std::uint32_t>(probe_.shards.size());
    for (std::uint32_t s = 0; s < shards; ++s) {
        const Tracer::CounterTrack exec = tracer.counterTrack(
            "prof", shardKey(prefix, s, "exec_ms"), s);
        const Tracer::CounterTrack barrier = tracer.counterTrack(
            "prof", shardKey(prefix, s, "barrier_ms"), s);
        const Tracer::CounterTrack events = tracer.counterTrack(
            "prof", shardKey(prefix, s, "events"), s);
        const Tracer::CounterTrack inbox = tracer.counterTrack(
            "prof", shardKey(prefix, s, "inbox"), s);
        // Rows hold cumulative counters; emit per-window deltas so
        // the tracks read as activity between samples, not a ramp.
        sim::ShardProbe::Sample prev{};
        for (std::uint32_t r = 0; r < probe_.rows; ++r) {
            const sim::ShardProbe::Sample &cur =
                probe_.samples[static_cast<std::size_t>(r) * shards +
                               s];
            const sim::Tick at = probe_.sampleTick[r];
            tracer.counterSample(
                exec, at,
                static_cast<double>(cur.execNs - prev.execNs) /
                    kNsPerMs);
            tracer.counterSample(
                barrier, at,
                static_cast<double>(cur.barrierNs - prev.barrierNs) /
                    kNsPerMs);
            tracer.counterSample(
                events, at,
                static_cast<double>(cur.executed - prev.executed));
            tracer.counterSample(
                inbox, at,
                static_cast<double>(cur.inbox - prev.inbox));
            prev = cur;
        }
    }
}

void
SuperstepProfiler::fillHealth(HealthReport &report) const
{
    const std::uint32_t shards =
        static_cast<std::uint32_t>(probe_.shards.size());

    // Deterministic: pure functions of (config, seed, shard count).
    report.bumpDet("prof.shards", static_cast<double>(shards));
    report.bumpDet("prof.supersteps",
                   static_cast<double>(probe_.supersteps));
    report.bumpDet("prof.supersteps.fastpath",
                   static_cast<double>(probe_.fastPath));
    report.bumpDet("prof.supersteps.barrier",
                   static_cast<double>(probe_.barriers));
    report.bumpDet("prof.drain.count",
                   static_cast<double>(probe_.drain.count));
    std::uint64_t cross = 0;
    for (std::uint64_t m : probe_.mailbox)
        cross += m;
    report.bumpDet("prof.cross.events", static_cast<double>(cross));
    for (std::uint32_t s = 0; s < shards; ++s) {
        report.bumpDet(shardKey("prof", s, "events"),
                       static_cast<double>(probe_.shards[s].executed));
        std::uint64_t inbox = 0;
        for (std::uint32_t src = 0; src < shards; ++src)
            inbox +=
                probe_.mailbox[static_cast<std::size_t>(src) * shards +
                               s];
        report.bumpDet(shardKey("prof", s, "inbox"),
                       static_cast<double>(inbox));
    }

    // Wall-clock: timings only; never read back into simulation.
    report.setWall("prof.imbalance", imbalance());
    double execMs = 0.0;
    double barrierMs = 0.0;
    for (std::uint32_t s = 0; s < shards; ++s) {
        const sim::ShardProbe::Shard &slot = probe_.shards[s];
        report.bumpWall(shardKey("prof", s, "exec_ms"),
                        static_cast<double>(slot.execute.ns) / kNsPerMs);
        report.bumpWall(shardKey("prof", s, "barrier_ms"),
                        static_cast<double>(slot.barrier.ns) / kNsPerMs);
        execMs += static_cast<double>(slot.execute.ns) / kNsPerMs;
        barrierMs += static_cast<double>(slot.barrier.ns) / kNsPerMs;
    }
    report.bumpWall("prof.exec_ms", execMs);
    report.bumpWall("prof.barrier_ms", barrierMs);
    report.bumpWall("prof.drain_ms",
                    static_cast<double>(probe_.drain.ns) / kNsPerMs);
    report.bumpWall("prof.serial_ms",
                    static_cast<double>(probe_.serial.ns) / kNsPerMs);

    if (group_) {
        fillQueueHealth(report, group_->leaf(group_->shards()),
                        "queue.serial");
        fillArenaHealth(report, group_->shardArena(group_->shards()),
                        "arena.serial");
        for (std::uint32_t s = 0; s < group_->shards(); ++s) {
            const std::string tag = std::to_string(s);
            fillQueueHealth(report, group_->leaf(s),
                            "queue/shard" + tag);
            fillArenaHealth(report, group_->shardArena(s),
                            "arena/shard" + tag);
        }
    }
}

void
fillQueueHealth(HealthReport &report, const sim::EventQueue &eq,
                std::string_view prefix)
{
    const std::string p(prefix);
    report.bumpDet(p + ".scheduled",
                   static_cast<double>(eq.totalScheduled()));
    report.bumpDet(p + ".executed",
                   static_cast<double>(eq.totalExecuted()));
    report.maxDet(p + ".depth_hwm",
                  static_cast<double>(eq.depthHighWater()));
    report.maxDet(p + ".batch_hwm",
                  static_cast<double>(eq.batchHighWater()));
}

void
fillArenaHealth(HealthReport &report, const sim::Arena &arena,
                std::string_view prefix)
{
    const std::string p(prefix);
    report.maxDet(p + ".reserved_bytes",
                  static_cast<double>(arena.bytesReserved()));
    report.maxDet(p + ".used_hwm_bytes",
                  static_cast<double>(arena.bytesHighWater()));
}

} // namespace blitz::trace
