/**
 * @file
 * Superstep profiler: the introspection half of the observability
 * plane, pointed at the *simulator* instead of the simulated SoC.
 *
 * The trace plane (tracer.hpp, metrics.hpp) answers "what did the
 * mesh do?"; this file answers "where did the engine's cycles go?" —
 * per-shard execute time, barrier wait, mailbox drain, serial-lane
 * time, the imbalance ratio between the hottest and coldest shard,
 * and the engine gauges at the hot seams (event-queue depth/batch
 * high-water marks, arena pressure).
 *
 * Data flow: sim::ShardGroup writes raw slots into a sim::ShardProbe
 * (defined in sim/shard.hpp so sim keeps its no-upward-deps
 * layering); the SuperstepProfiler here owns the probe, attaches it,
 * and exports two ways —
 *
 *  - **Perfetto counter tracks** (emitCounterTracks): per-shard
 *    exec/barrier/event/inbox series stamped at *sim ticks*, so one
 *    trace.json shows sim-time lanes and engine-time counters side by
 *    side in the same viewer.
 *  - **HealthReport sections** (fillHealth): deterministic counts
 *    (supersteps, per-shard events, mailbox matrix) into the
 *    deterministic section, wall-clock phase totals and the imbalance
 *    ratio into the wallclock section.
 *
 * Determinism: attaching the profiler never perturbs a run (golden
 * digests are pinned with it attached at shards 1/2/4); wall-clock
 * values flow out only, never back into simulation.
 */

#ifndef BLITZ_TRACE_PROF_HPP
#define BLITZ_TRACE_PROF_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/shard.hpp"

namespace blitz::trace {

class HealthReport;
class Tracer;

/** Owns a sim::ShardProbe and renders it; see the file comment. */
class SuperstepProfiler
{
  public:
    struct Options
    {
        /** Supersteps between counter-track sample rows; 0 = off. */
        std::uint32_t sampleStride = 16;
        /** Sample-row capacity (stride doubles when it fills). */
        std::uint32_t maxSamples = 1024;
    };

    SuperstepProfiler() = default;
    explicit SuperstepProfiler(Options opts) : opts_(opts) {}
    ~SuperstepProfiler() { detach(); }

    SuperstepProfiler(const SuperstepProfiler &) = delete;
    SuperstepProfiler &operator=(const SuperstepProfiler &) = delete;

    /**
     * Size the probe for @p group and attach it. Call between runs
     * (never mid-superstep); re-attaching to another group resets the
     * accumulated slots. The profiler must outlive the attachment —
     * the destructor detaches.
     */
    void attach(sim::ShardGroup &group);

    /** Detach from the current group (safe when never attached). */
    void detach();

    bool attached() const { return group_ != nullptr; }
    const sim::ShardProbe &probe() const { return probe_; }

    /** Hottest / coldest per-shard execute-time ratio (>= 1). */
    double imbalance() const { return probe_.imbalance(); }

    /**
     * Emit the sampled per-shard series as interned counter tracks
     * ("<prefix>/shard<i>.exec_ms" etc., tid = shard index, values
     * per sample window). One-shot export after a run — never called
     * from the steady loop.
     */
    void emitCounterTracks(Tracer &tracer,
                           const std::string &prefix = "prof") const;

    /**
     * Fill @p report: deterministic superstep/event/mailbox counts
     * plus the attached group's queue and arena gauges into the
     * deterministic section, phase wall-clock into wallclock.
     */
    void fillHealth(HealthReport &report) const;

  private:
    Options opts_;
    sim::ShardGroup *group_ = nullptr;
    sim::ShardProbe probe_;
};

/**
 * Engine gauges of one (possibly sharded-anchor) event queue into the
 * deterministic section: executed/scheduled totals and depth/batch
 * high-water marks, under "<prefix>.".
 */
void fillQueueHealth(HealthReport &report, const sim::EventQueue &eq,
                     std::string_view prefix = "queue");

/** Arena pressure gauges under "<prefix>." (deterministic). */
void fillArenaHealth(HealthReport &report, const sim::Arena &arena,
                     std::string_view prefix = "arena");

} // namespace blitz::trace

#endif // BLITZ_TRACE_PROF_HPP
