#include "tracer.hpp"

#include <cstdio>
#include <ostream>

namespace blitz::trace {

namespace {

/**
 * Ticks to Chrome's microsecond timebase. Rendered with four decimals:
 * one tick is 1.25 ns = 0.00125 µs, so four decimals round-trip any
 * tick-aligned timestamp below ~2^53 exactly enough for viewers while
 * keeping files compact.
 */
void
printTs(std::ostream &os, sim::Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.4f", sim::ticksToUs(t));
    os << buf;
}

void
printEscaped(std::ostream &os, const char *s)
{
    os << '"';
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << *s;
    }
    os << '"';
}

} // namespace

void
Tracer::push(Event e, std::initializer_list<TraceArg> args)
{
    // Sole writer entry point — complete/instant/counter all funnel
    // here, so this lock is the tracer's entire thread-safety story.
    std::lock_guard<std::mutex> lock(pushMu_);
    if (events_.size() >= maxEvents_) {
        ++dropped_;
        return;
    }
    e.args.assign(args.begin(), args.end());
    events_.push_back(std::move(e));
}

void
Tracer::complete(const char *cat, const char *name, std::uint32_t tid,
                 sim::Tick start, sim::Tick end,
                 std::initializer_list<TraceArg> args)
{
    if (!enabled_)
        return;
    Event e{};
    e.ph = 'X';
    e.cat = cat;
    e.name = name;
    e.pid = pid_;
    e.tid = tid;
    e.ts = start;
    e.dur = end >= start ? end - start : 0;
    push(std::move(e), args);
}

void
Tracer::instant(const char *cat, const char *name, std::uint32_t tid,
                sim::Tick at, std::initializer_list<TraceArg> args)
{
    if (!enabled_)
        return;
    Event e{};
    e.ph = 'i';
    e.cat = cat;
    e.name = name;
    e.pid = pid_;
    e.tid = tid;
    e.ts = at;
    push(std::move(e), args);
}

void
Tracer::counter(const char *cat, const char *name, std::uint32_t tid,
                sim::Tick at, double value)
{
    if (!enabled_)
        return;
    Event e{};
    e.ph = 'C';
    e.cat = cat;
    e.name = name;
    e.pid = pid_;
    e.tid = tid;
    e.ts = at;
    e.value = value;
    push(std::move(e), {});
}

Tracer::CounterTrack
Tracer::counterTrack(const std::string &cat, const std::string &name,
                     std::uint32_t tid)
{
    std::lock_guard<std::mutex> lock(pushMu_);
    for (std::size_t i = 0; i < tracks_.size(); ++i) {
        const TrackInfo &t = tracks_[i];
        if (t.tid == tid && t.name == name && t.cat == cat)
            return CounterTrack{static_cast<std::int32_t>(i)};
    }
    tracks_.push_back(TrackInfo{cat, name, tid});
    return CounterTrack{static_cast<std::int32_t>(tracks_.size() - 1)};
}

void
Tracer::counterSample(CounterTrack track, sim::Tick at, double value)
{
    if (!enabled_ || !track.valid())
        return;
    Event e{};
    e.ph = 'C';
    e.cat = nullptr;
    e.name = nullptr;
    e.pid = pid_;
    e.tid = 0; // resolved from the track table at write time
    e.ts = at;
    e.value = value;
    e.track = track.id;
    push(std::move(e), {});
}

void
Tracer::absorb(const Tracer &other, std::uint32_t pid)
{
    // Re-intern the source's counter tracks before copying events:
    // track-backed events carry only an index into the *source* table,
    // and the literal-pointer path must never be used for owned names
    // — the per-replication tracer (and its strings) dies right after
    // the fold. trackMap[i] is the destination id of source track i.
    std::vector<std::int32_t> trackMap(other.tracks_.size(), -1);
    for (std::size_t i = 0; i < other.tracks_.size(); ++i) {
        const TrackInfo &t = other.tracks_[i];
        trackMap[i] = counterTrack(t.cat, t.name, t.tid).id;
    }
    for (const Event &e : other.events_) {
        if (events_.size() >= maxEvents_) {
            ++dropped_;
            continue;
        }
        Event copy = e;
        copy.pid = pid;
        if (copy.track >= 0)
            copy.track = trackMap[static_cast<std::size_t>(copy.track)];
        events_.push_back(std::move(copy));
    }
    dropped_ += other.dropped_;
}

void
Tracer::clear()
{
    events_.clear();
    dropped_ = 0;
}

void
Tracer::writeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event &e = events_[i];
        const TrackInfo *track =
            e.track >= 0 ? &tracks_[static_cast<std::size_t>(e.track)]
                         : nullptr;
        if (i)
            os << ',';
        os << "{\"ph\":\"" << e.ph << "\",\"cat\":";
        printEscaped(os, track ? track->cat.c_str() : e.cat);
        os << ",\"name\":";
        printEscaped(os, track ? track->name.c_str() : e.name);
        os << ",\"pid\":" << e.pid
           << ",\"tid\":" << (track ? track->tid : e.tid) << ",\"ts\":";
        printTs(os, e.ts);
        if (e.ph == 'X') {
            os << ",\"dur\":";
            printTs(os, e.dur);
        }
        if (e.ph == 'i')
            os << ",\"s\":\"t\"";
        if (e.ph == 'C') {
            os << ",\"args\":{\"value\":";
            char buf[40];
            std::snprintf(buf, sizeof buf, "%.6g", e.value);
            os << buf << '}';
        } else if (!e.args.empty()) {
            os << ",\"args\":{";
            for (std::size_t a = 0; a < e.args.size(); ++a) {
                if (a)
                    os << ',';
                printEscaped(os, e.args[a].key);
                os << ':';
                if (e.args[a].str)
                    printEscaped(os, e.args[a].str);
                else
                    os << e.args[a].num;
            }
            os << '}';
        }
        os << '}';
    }
    os << "]}";
}

} // namespace blitz::trace
