/**
 * @file
 * Event tracer: the timeline half of the observability plane.
 *
 * Records complete spans ('X'), instants ('i'), and counter samples
 * ('C') in the Chrome trace-event JSON format, so a chaos run opens
 * directly in Perfetto / chrome://tracing. Timestamps convert simulated
 * ticks to microseconds at the SoC's 800 MHz NoC clock; the `pid` maps
 * to a sweep replication and the `tid` to a tile, so a merged sweep
 * trace shows one process lane per replication with per-tile threads.
 *
 * Cost model: hook sites hold a `Tracer *` that is null by default —
 * the disabled path is one branch, exactly the FaultHook::inert()
 * pattern. An attached-but-disabled tracer (setEnabled(false)) refuses
 * events at the method entry, which the golden-trace tests rely on.
 * Event capacity is bounded; overflow drops new events and counts them
 * (droppedEvents()), never silently.
 *
 * Thread safety: the append path (push) takes a mutex, so hook sites
 * running in parallel shard phases (sim/shard.hpp) may share one
 * tracer without racing the event vector. Interleaving across shards
 * is arbitrary, so sharded golden digests must not pin event *order*
 * — only counts. Readers (eventCount, writeJson, absorb) are not
 * synchronized against concurrent appends; call them between runs.
 *
 * Counter tracks: counter() takes literal cat/name pointers and is
 * fine for a fixed set of gauges, but engine introspection needs
 * dynamically built track names ("prof/shard3.exec_ms"). counterTrack()
 * interns such a name into tracer-owned storage and returns a small
 * handle; counterSample() then records against the handle. absorb()
 * re-interns the source's track table into the destination, so merged
 * replication traces keep their counter tracks alive after the
 * per-replication tracer dies (the raw-pointer path would dangle).
 */

#ifndef BLITZ_TRACE_TRACER_HPP
#define BLITZ_TRACE_TRACER_HPP

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace blitz::trace {

/**
 * One key/value argument of a trace event. Keys must be string
 * literals (hook sites only ever pass literals); values are either
 * integers or short labels.
 */
struct TraceArg
{
    TraceArg(const char *k, std::int64_t v) : key(k), num(v) {}
    TraceArg(const char *k, const char *v) : key(k), str(v) {}

    const char *key;
    const char *str = nullptr; ///< label value; null means numeric
    std::int64_t num = 0;
};

/** Chrome trace-event recorder. */
class Tracer
{
  public:
    /** @param maxEvents capacity before overflow counting starts. */
    explicit Tracer(std::size_t maxEvents = 1u << 20)
        : maxEvents_(maxEvents)
    {
    }

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    bool enabled() const { return enabled_; }

    /** Gate recording; disabled calls return before touching state. */
    void setEnabled(bool on) { enabled_ = on; }

    /** Process lane for subsequently recorded events (replication id). */
    void setPid(std::uint32_t pid) { pid_ = pid; }

    /** Record a complete span [start, end] ('X'). */
    void complete(const char *cat, const char *name, std::uint32_t tid,
                  sim::Tick start, sim::Tick end,
                  std::initializer_list<TraceArg> args = {});

    /** Record a point event ('i', thread scope). */
    void instant(const char *cat, const char *name, std::uint32_t tid,
                 sim::Tick at, std::initializer_list<TraceArg> args = {});

    /** Record a counter sample ('C'). */
    void counter(const char *cat, const char *name, std::uint32_t tid,
                 sim::Tick at, double value);

    /**
     * Handle to an interned counter track. Cheap value type; valid for
     * the owning tracer's lifetime (clear() keeps the track table so
     * handles survive between runs).
     */
    struct CounterTrack
    {
        std::int32_t id = -1;
        bool valid() const { return id >= 0; }
    };

    /**
     * Intern a counter track whose name need not be a string literal —
     * the tracer copies @p cat and @p name into owned storage.
     * Interning an identical (cat, name, tid) triple returns the
     * existing handle, so absorb() merges like-named tracks from
     * different replications into one per-pid track per lane.
     */
    CounterTrack counterTrack(const std::string &cat,
                              const std::string &name,
                              std::uint32_t tid);

    /** Record a counter sample ('C') against an interned track. */
    void counterSample(CounterTrack track, sim::Tick at, double value);

    /** Interned counter tracks (tests / introspection). */
    std::size_t trackCount() const { return tracks_.size(); }

    std::size_t eventCount() const { return events_.size(); }

    /** Events refused because the capacity was reached. */
    std::uint64_t droppedEvents() const { return dropped_; }

    /**
     * Append another tracer's events re-homed to process lane @p pid —
     * the sweep fold path. Deterministic: pure concatenation in call
     * order, no sorting.
     */
    void absorb(const Tracer &other, std::uint32_t pid);

    /** Write the {"traceEvents": [...]} document. */
    void writeJson(std::ostream &os) const;

    void clear();

  private:
    struct Event
    {
        char ph;
        const char *cat;
        const char *name;
        std::uint32_t pid;
        std::uint32_t tid;
        sim::Tick ts;
        sim::Tick dur;    ///< 'X' only
        double value;     ///< 'C' only
        /** Interned track id; >= 0 overrides cat/name/tid at write. */
        std::int32_t track = -1;
        std::vector<TraceArg> args;
    };

    /** Owned identity of one interned counter track. */
    struct TrackInfo
    {
        std::string cat;
        std::string name;
        std::uint32_t tid;
    };

    bool admit() const
    {
        return enabled_ && events_.size() < maxEvents_;
    }

    void push(Event e, std::initializer_list<TraceArg> args);

    bool enabled_ = true;
    std::uint32_t pid_ = 0;
    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
    std::vector<Event> events_;
    std::vector<TrackInfo> tracks_;
    /** Serializes push() across parallel shard phases. */
    std::mutex pushMu_;
};

} // namespace blitz::trace

#endif // BLITZ_TRACE_TRACER_HPP
