#include "dag.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace blitz::workload {

TaskId
Dag::add(std::string name, noc::NodeId tile, double workCycles,
         std::vector<TaskId> deps)
{
    if (workCycles <= 0.0)
        sim::fatal("task '", name, "' has non-positive work");
    auto id = static_cast<TaskId>(tasks_.size());
    tasks_.push_back(Task{id, std::move(name), tile, workCycles,
                          std::move(deps)});
    successors_.emplace_back();
    for (TaskId d : tasks_.back().deps) {
        if (d >= id)
            sim::fatal("task ", id, " depends on not-yet-added task ", d);
        successors_[d].push_back(id);
    }
    return id;
}

const std::vector<TaskId> &
Dag::successors(TaskId id) const
{
    return successors_.at(id);
}

std::vector<TaskId>
Dag::roots() const
{
    std::vector<TaskId> out;
    for (const Task &t : tasks_) {
        if (t.deps.empty())
            out.push_back(t.id);
    }
    return out;
}

void
Dag::validate() const
{
    // add() forbids forward/self dependencies, which already guarantees
    // acyclicity; re-verify here so hand-mutated graphs are caught too.
    (void)topoOrder();
}

std::vector<TaskId>
Dag::topoOrder() const
{
    std::vector<std::size_t> indegree(tasks_.size(), 0);
    for (const Task &t : tasks_) {
        for (TaskId d : t.deps) {
            if (d >= tasks_.size())
                sim::fatal("task ", t.id, " depends on unknown task ", d);
            ++indegree[t.id];
        }
    }
    std::vector<TaskId> ready;
    for (const Task &t : tasks_) {
        if (indegree[t.id] == 0)
            ready.push_back(t.id);
    }
    std::vector<TaskId> order;
    order.reserve(tasks_.size());
    while (!ready.empty()) {
        TaskId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (TaskId s : successors_[id]) {
            if (--indegree[s] == 0)
                ready.push_back(s);
        }
    }
    if (order.size() != tasks_.size())
        sim::fatal("workload DAG contains a cycle");
    return order;
}

double
Dag::totalWork() const
{
    double sum = 0.0;
    for (const Task &t : tasks_)
        sum += t.workCycles;
    return sum;
}

bool
Dag::isParallel() const
{
    return std::all_of(tasks_.begin(), tasks_.end(),
                       [](const Task &t) { return t.deps.empty(); });
}

} // namespace blitz::workload
