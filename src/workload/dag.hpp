/**
 * @file
 * Task DAGs: the workload representation of Section V-B.
 *
 * A workload is a set of tasks, each bound to an accelerator tile with
 * an amount of work expressed in accelerator clock cycles at full
 * frequency. Dependencies form a DAG: in the Workload-Parallel (WL-Par)
 * scenario the DAG has no edges and every accelerator runs concurrently;
 * in Workload-Dependent (WL-Dep) tasks chain the way a real application
 * (e.g. the connected-autonomous-vehicle pipeline) does.
 */

#ifndef BLITZ_WORKLOAD_DAG_HPP
#define BLITZ_WORKLOAD_DAG_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "noc/topology.hpp"

namespace blitz::workload {

/** Task identifier within a DAG. */
using TaskId = std::uint32_t;

/** One accelerator invocation. */
struct Task
{
    TaskId id = 0;
    std::string name;
    /** Tile that executes the task. */
    noc::NodeId tile = 0;
    /** Work in accelerator cycles at Fmax. */
    double workCycles = 0.0;
    /** Tasks that must complete before this one starts. */
    std::vector<TaskId> deps;
};

/**
 * Directed acyclic graph of tasks.
 *
 * Construction validates ids and acyclicity; accessors expose the
 * successor lists the scheduler needs.
 */
class Dag
{
  public:
    Dag() = default;

    /**
     * Add a task; its id must equal its index (enforced).
     * @return the task id.
     */
    TaskId add(std::string name, noc::NodeId tile, double workCycles,
               std::vector<TaskId> deps = {});

    std::size_t size() const { return tasks_.size(); }
    const Task &task(TaskId id) const { return tasks_.at(id); }
    const std::vector<Task> &tasks() const { return tasks_; }

    /** Tasks that depend on @p id. */
    const std::vector<TaskId> &successors(TaskId id) const;

    /** Tasks with no dependencies. */
    std::vector<TaskId> roots() const;

    /**
     * Validate the graph: dependency ids exist and there is no cycle.
     * fatal() on violation; call once after building.
     */
    void validate() const;

    /** Topological order (validates implicitly). */
    std::vector<TaskId> topoOrder() const;

    /** Sum of work over all tasks (cycles). */
    double totalWork() const;

    /** True when no task depends on another (WL-Par shape). */
    bool isParallel() const;

  private:
    std::vector<Task> tasks_;
    std::vector<std::vector<TaskId>> successors_;
};

} // namespace blitz::workload

#endif // BLITZ_WORKLOAD_DAG_HPP
