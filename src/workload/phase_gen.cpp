#include "phase_gen.hpp"

#include <algorithm>
#include <cmath>

#include "sim/logging.hpp"

namespace blitz::workload {

PhaseGenerator::PhaseGenerator(std::uint32_t tiles,
                               const PhaseGenConfig &cfg,
                               std::uint64_t seed)
    : tiles_(tiles), cfg_(cfg), rng_(seed), active0_(tiles, false)
{
    if (tiles_ == 0)
        sim::fatal("phase generator needs at least one tile");
    if (cfg_.meanPhaseTicks == 0)
        sim::fatal("mean phase duration must be positive");
    for (std::uint32_t i = 0; i < tiles_; ++i)
        active0_[i] = rng_.chance(cfg_.initialActiveFraction);
}

std::vector<PhaseEvent>
PhaseGenerator::generate(sim::Tick horizon)
{
    std::vector<PhaseEvent> events;
    const double mean = static_cast<double>(cfg_.meanPhaseTicks);
    for (std::uint32_t i = 0; i < tiles_; ++i) {
        bool active = active0_[i];
        double t = rng_.exponential(mean);
        while (t <= static_cast<double>(horizon)) {
            active = !active;
            events.push_back(PhaseEvent{
                static_cast<sim::Tick>(std::llround(t)), i, active});
            t += rng_.exponential(mean);
        }
    }
    std::sort(events.begin(), events.end(),
              [](const PhaseEvent &a, const PhaseEvent &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.tile < b.tile;
              });
    return events;
}

} // namespace blitz::workload
