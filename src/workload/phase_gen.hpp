/**
 * @file
 * Random activity-phase generator.
 *
 * Section I frames scalability in terms of the accelerator-level
 * workload phase duration T_w: if each accelerator starts or ends a
 * phase once per T_w on average, an N-accelerator SoC sees an activity
 * change every T_w / N. This generator produces exactly that stochastic
 * process — per-tile exponential on/off phases with mean T_w — and is
 * used by the scalability experiments to stress power-management
 * response under sustained churn.
 */

#ifndef BLITZ_WORKLOAD_PHASE_GEN_HPP
#define BLITZ_WORKLOAD_PHASE_GEN_HPP

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace blitz::workload {

/** One activity-change event. */
struct PhaseEvent
{
    sim::Tick when = 0;
    std::uint32_t tile = 0;
    bool startsExecution = false; ///< true: phase begins; false: ends
};

/** Parameters of the on/off churn process. */
struct PhaseGenConfig
{
    /** Mean phase duration T_w (ticks). */
    sim::Tick meanPhaseTicks = 0;
    /** Fraction of tiles initially executing. */
    double initialActiveFraction = 0.5;
};

/**
 * Generates a deterministic (seeded) stream of per-tile phase events,
 * pre-sorted by time.
 */
class PhaseGenerator
{
  public:
    /**
     * @param tiles number of managed tiles.
     * @param cfg churn parameters.
     * @param seed RNG seed.
     */
    PhaseGenerator(std::uint32_t tiles, const PhaseGenConfig &cfg,
                   std::uint64_t seed);

    /** Initial activity state per tile. */
    const std::vector<bool> &initialActive() const { return active0_; }

    /**
     * Generate all events in [0, horizon], sorted by time.
     * Each tile alternates on/off with Exp(meanPhase) durations.
     */
    std::vector<PhaseEvent> generate(sim::Tick horizon);

    /** Mean interval between SoC-level changes: T_w / N. */
    sim::Tick
    socChangeInterval() const
    {
        return cfg_.meanPhaseTicks / tiles_;
    }

  private:
    std::uint32_t tiles_;
    PhaseGenConfig cfg_;
    sim::Rng rng_;
    std::vector<bool> active0_;
};

} // namespace blitz::workload

#endif // BLITZ_WORKLOAD_PHASE_GEN_HPP
