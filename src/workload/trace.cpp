#include "trace.hpp"

#include <algorithm>
#include <sstream>

#include "sim/logging.hpp"

namespace blitz::workload {

void
ActivityTrace::record(sim::Tick when, std::uint32_t tile, bool active)
{
    if (!events_.empty() && when < events_.back().when)
        sim::fatal("trace edges must be recorded in time order");
    events_.push_back(PhaseEvent{when, tile, active});
}

void
ActivityTrace::setTargetCoins(std::uint32_t tile, coin::Coins target)
{
    BLITZ_ASSERT(target > 0, "target coins must be positive");
    if (targets_.size() <= tile)
        targets_.resize(tile + 1, 16);
    targets_[tile] = target;
}

sim::Tick
ActivityTrace::horizon() const
{
    return events_.empty() ? 0 : events_.back().when;
}

std::uint32_t
ActivityTrace::maxTile() const
{
    std::uint32_t top = 0;
    for (const PhaseEvent &e : events_)
        top = std::max(top, e.tile);
    return top;
}

std::string
ActivityTrace::toCsv() const
{
    std::ostringstream os;
    os << "tick,tile,active\n";
    for (const PhaseEvent &e : events_) {
        os << e.when << ',' << e.tile << ','
           << (e.startsExecution ? 1 : 0) << '\n';
    }
    return os.str();
}

ActivityTrace
ActivityTrace::fromCsv(const std::string &csv)
{
    ActivityTrace trace;
    std::istringstream is(csv);
    std::string line;
    bool header = true;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (header) {
            header = false;
            if (line.rfind("tick,", 0) == 0)
                continue; // skip the header row
        }
        std::istringstream row(line);
        std::string tick_s, tile_s, active_s;
        if (!std::getline(row, tick_s, ',') ||
            !std::getline(row, tile_s, ',') ||
            !std::getline(row, active_s)) {
            sim::fatal("malformed trace row ", lineno, ": '", line,
                       "'");
        }
        try {
            trace.record(
                static_cast<sim::Tick>(std::stoull(tick_s)),
                static_cast<std::uint32_t>(std::stoul(tile_s)),
                std::stoi(active_s) != 0);
        } catch (const std::logic_error &) {
            sim::fatal("malformed trace row ", lineno, ": '", line,
                       "'");
        }
    }
    return trace;
}

ActivityTrace
ActivityTrace::fromGenerator(PhaseGenerator &gen, sim::Tick horizon)
{
    ActivityTrace trace;
    // Initial state edges at t=0 for tiles that start active.
    const auto &initial = gen.initialActive();
    for (std::uint32_t i = 0; i < initial.size(); ++i) {
        if (initial[i])
            trace.record(0, i, true);
    }
    for (const PhaseEvent &e : gen.generate(horizon))
        trace.events_.push_back(e);
    return trace;
}

ActivityTrace::ReplayStats
ActivityTrace::replayOn(coin::MeshSim &sim, sim::Tick samplePeriod) const
{
    BLITZ_ASSERT(sim.ledger().size() > maxTile(),
                 "replay mesh smaller than the trace's tile range");
    BLITZ_ASSERT(samplePeriod > 0, "sample period must be positive");

    const std::uint64_t packets0 = sim.totalPackets();
    const std::uint64_t exchanges0 = sim.totalExchanges();

    auto target_of = [this](std::uint32_t tile) {
        return tile < targets_.size() ? targets_[tile]
                                      : coin::Coins{16};
    };

    std::size_t next = 0;
    std::uint64_t samples = 0, busy = 0;
    const sim::Tick end = horizon() + samplePeriod;
    while (sim.now() < end) {
        while (next < events_.size() &&
               events_[next].when <= sim.now()) {
            const PhaseEvent &e = events_[next];
            sim.setMax(e.tile,
                       e.startsExecution ? target_of(e.tile) : 0);
            ++next;
        }
        sim.runFor(samplePeriod);
        ++samples;
        busy += sim.maxError() > 2.0 ? 1 : 0;
    }

    ReplayStats stats;
    stats.packets = sim.totalPackets() - packets0;
    stats.exchanges = sim.totalExchanges() - exchanges0;
    stats.busyFraction = samples == 0
                             ? 0.0
                             : static_cast<double>(busy) /
                                   static_cast<double>(samples);
    // With every tile idle there is no distribution to be wrong about
    // (coins park wherever the last task left them).
    stats.finalMaxError =
        sim.ledger().totalMax() == 0 ? 0.0 : sim.maxError();
    return stats;
}

} // namespace blitz::workload
