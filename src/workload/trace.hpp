/**
 * @file
 * Activity-trace recording and replay.
 *
 * The paper's RTL flow exports tile-activity waveforms to CSV and
 * post-processes them (Artifact Appendix E/F). This module is the
 * equivalent bridge for this repo: record the activity edges of a
 * full-SoC run (or synthesize them), serialize to the same kind of
 * CSV, and replay them onto the fast behavioral engine — so a
 * design-space sweep (back-off law, pairing period, coin precision)
 * can be driven by a *real* workload's activity pattern instead of a
 * synthetic generator, at Monte-Carlo speed.
 */

#ifndef BLITZ_WORKLOAD_TRACE_HPP
#define BLITZ_WORKLOAD_TRACE_HPP

#include <string>
#include <vector>

#include "coin/engine.hpp"
#include "phase_gen.hpp"

namespace blitz::workload {

/**
 * A time-ordered list of per-tile activity edges with per-tile coin
 * targets attached.
 */
class ActivityTrace
{
  public:
    ActivityTrace() = default;

    /** Append an edge; times must be non-decreasing. */
    void record(sim::Tick when, std::uint32_t tile, bool active);

    /** Set a tile's coin target while active (default 16). */
    void setTargetCoins(std::uint32_t tile, coin::Coins target);

    std::size_t size() const { return events_.size(); }
    const std::vector<PhaseEvent> &events() const { return events_; }
    sim::Tick horizon() const;

    /** Highest tile index referenced (determines replay mesh size). */
    std::uint32_t maxTile() const;

    /** Serialize: "tick,tile,active" rows with a header. */
    std::string toCsv() const;

    /** Parse a trace produced by toCsv(); fatal() on malformed rows. */
    static ActivityTrace fromCsv(const std::string &csv);

    /** Build a trace from a phase generator (synthetic churn). */
    static ActivityTrace fromGenerator(PhaseGenerator &gen,
                                       sim::Tick horizon);

    /**
     * Replay statistics: what the coin exchange did while the trace's
     * activity pattern ran.
     */
    struct ReplayStats
    {
        std::uint64_t packets = 0;
        std::uint64_t exchanges = 0;
        /** Fraction of samples with a reallocation in flight. */
        double busyFraction = 0.0;
        /** Worst per-tile residual at the end of the replay. */
        double finalMaxError = 0.0;
    };

    /**
     * Replay onto a behavioral mesh.
     * @param sim engine sized to cover maxTile(); targets are applied
     *        through setMax at each edge.
     * @param samplePeriod busy-fraction sampling cadence (ticks).
     */
    ReplayStats replayOn(coin::MeshSim &sim,
                         sim::Tick samplePeriod = 200) const;

  private:
    std::vector<PhaseEvent> events_;
    std::vector<coin::Coins> targets_; ///< by tile; 16 if unset
};

} // namespace blitz::workload

#endif // BLITZ_WORKLOAD_TRACE_HPP
