/**
 * @file
 * Tests for the activity-counter power proxy and the adaptive LUT —
 * the CPU-tile extension path of Section IV-C.
 */

#include <gtest/gtest.h>

#include "blitzcoin/adaptive_lut.hpp"
#include "power/activity_proxy.hpp"
#include "sim/rng.hpp"

namespace {

using namespace blitz;
using power::ActivityCounters;
using power::PowerProxy;
using power::ProxySample;

constexpr double nomF = 800.0;
constexpr double nomV = 1.0;

/** Ground-truth model used to synthesize calibration data. */
double
truePower(const ActivityCounters &c, double f, double v)
{
    auto r = c.rates();
    double scale = (v / nomV) * (v / nomV) * (f / nomF);
    return 12.0 * v + scale * (8.0 + 30.0 * r[0] + 18.0 * r[1] +
                               22.0 * r[2]);
}

ActivityCounters
counters(std::uint64_t cycles, double ipc, double mem, double fp)
{
    ActivityCounters c;
    c.cycles = cycles;
    c.instructions = static_cast<std::uint64_t>(ipc * cycles);
    c.memAccesses = static_cast<std::uint64_t>(mem * cycles);
    c.fpOps = static_cast<std::uint64_t>(fp * cycles);
    return c;
}

std::vector<ProxySample>
makeSamples(int n, std::uint64_t seed, double noiseMw = 0.0)
{
    sim::Rng rng(seed);
    std::vector<ProxySample> out;
    for (int i = 0; i < n; ++i) {
        ProxySample s;
        s.counters = counters(100000, rng.uniform(0.1, 2.0),
                              rng.uniform(0.0, 0.6),
                              rng.uniform(0.0, 0.8));
        s.freqMhz = rng.uniform(200.0, 800.0);
        s.voltage = rng.uniform(0.5, 1.0);
        s.measuredMw = truePower(s.counters, s.freqMhz, s.voltage) +
                       rng.normal(0.0, noiseMw);
        out.push_back(s);
    }
    return out;
}

TEST(ActivityProxy, RatesArePerCycle)
{
    ActivityCounters c = counters(1000, 1.5, 0.25, 0.5);
    auto r = c.rates();
    EXPECT_NEAR(r[0], 1.5, 1e-9);
    EXPECT_NEAR(r[1], 0.25, 1e-9);
    EXPECT_NEAR(r[2], 0.5, 1e-9);
    EXPECT_EQ(ActivityCounters{}.rates()[0], 0.0);
}

TEST(ActivityProxy, CalibrationRecoversExactModel)
{
    auto samples = makeSamples(40, 1);
    PowerProxy proxy = PowerProxy::calibrate(samples, nomF, nomV);
    EXPECT_NEAR(proxy.weights().leakPerVolt, 12.0, 1e-6);
    EXPECT_NEAR(proxy.weights().base, 8.0, 1e-6);
    EXPECT_NEAR(proxy.weights().ipc, 30.0, 1e-6);
    EXPECT_NEAR(proxy.weights().mem, 18.0, 1e-6);
    EXPECT_NEAR(proxy.weights().fp, 22.0, 1e-6);
    EXPECT_LT(proxy.meanAbsErrorMw(samples), 1e-6);
}

TEST(ActivityProxy, NoisyCalibrationStaysAccurate)
{
    auto train = makeSamples(200, 2, /*noiseMw=*/1.0);
    auto test = makeSamples(50, 3, 0.0);
    PowerProxy proxy = PowerProxy::calibrate(train, nomF, nomV);
    // Literature proxies report within a few percent; our synthetic
    // rig should land well under 1 mW mean error on clean data.
    EXPECT_LT(proxy.meanAbsErrorMw(test), 1.0);
}

TEST(ActivityProxy, GeneralizesAcrossDvfsPoints)
{
    // Train at high V/F only; predict at low V/F (the scaling factor
    // carries the model across operating points).
    sim::Rng rng(4);
    std::vector<ProxySample> train;
    for (int i = 0; i < 30; ++i) {
        ProxySample s;
        s.counters = counters(50000, rng.uniform(0.1, 2.0),
                              rng.uniform(0.0, 0.6),
                              rng.uniform(0.0, 0.8));
        s.freqMhz = rng.uniform(600.0, 800.0);
        s.voltage = rng.uniform(0.85, 1.0);
        s.measuredMw = truePower(s.counters, s.freqMhz, s.voltage);
        train.push_back(s);
    }
    PowerProxy proxy = PowerProxy::calibrate(train, nomF, nomV);
    ActivityCounters c = counters(50000, 1.0, 0.3, 0.2);
    EXPECT_NEAR(proxy.estimateMw(c, 250.0, 0.55),
                truePower(c, 250.0, 0.55), 0.5);
}

TEST(ActivityProxy, EstimateScalesWithActivity)
{
    PowerProxy proxy(PowerProxy::Weights{10.0, 5.0, 20.0, 10.0, 10.0},
                     nomF, nomV);
    auto busy = counters(1000, 2.0, 0.5, 0.5);
    auto idle = counters(1000, 0.1, 0.0, 0.0);
    EXPECT_GT(proxy.estimateMw(busy, 800.0, 1.0),
              proxy.estimateMw(idle, 800.0, 1.0) + 30.0);
}

TEST(ActivityProxy, CalibrationRejectsBadInput)
{
    EXPECT_THROW(PowerProxy::calibrate({}, nomF, nomV),
                 sim::FatalError);
    // Degenerate samples (all identical) cannot span the model.
    std::vector<ProxySample> same(6);
    for (auto &s : same) {
        s.counters = counters(1000, 1.0, 0.2, 0.2);
        s.freqMhz = 800.0;
        s.voltage = 1.0;
        s.measuredMw = 50.0;
    }
    EXPECT_THROW(PowerProxy::calibrate(same, nomF, nomV),
                 sim::FatalError);
}

// ---------------------------------------------------------- AdaptiveLut

using blitzcoin::AdaptiveCoinLut;

coin::CoinScale
scale()
{
    return coin::makeScale(120.0, {55.0, 27.5, 180.0}, 6);
}

TEST(AdaptiveLut, FullActivityMatchesStaticCurve)
{
    AdaptiveCoinLut lut(power::catalog::fft(), scale());
    const double mw_per_coin = scale().mwPerCoin();
    for (coin::Coins c = 2; c < 20; ++c) {
        double f = lut.freqFor(c, 1.0);
        EXPECT_NEAR(f, power::catalog::fft().freqForPower(
                            static_cast<double>(c) * mw_per_coin),
                    1e-9);
    }
}

TEST(AdaptiveLut, LowerActivityBuysHigherFrequency)
{
    AdaptiveCoinLut lut(power::catalog::fft(), scale());
    double f_full = lut.freqFor(5, 1.0);
    double f_half = lut.freqFor(5, 0.5);
    EXPECT_GT(f_half, f_full * 1.2);
}

TEST(AdaptiveLut, PowerStaysWithinCoinBudget)
{
    AdaptiveCoinLut lut(power::catalog::fft(), scale());
    const double mw_per_coin = scale().mwPerCoin();
    for (coin::Coins c = 1; c <= 30; ++c) {
        for (double a : {0.2, 0.4, 0.7, 1.0}) {
            EXPECT_LE(lut.powerFor(c, a),
                      static_cast<double>(c) * mw_per_coin + 1e-9)
                << "coins " << c << " activity " << a;
        }
    }
}

TEST(AdaptiveLut, ActivityFloorPreventsOverclock)
{
    AdaptiveCoinLut lut(power::catalog::fft(), scale(),
                        /*minActivity=*/0.5);
    // A momentarily idle core (a ~ 0) must not be granted more than
    // the floor allows.
    EXPECT_DOUBLE_EQ(lut.freqFor(5, 0.01), lut.freqFor(5, 0.5));
}

TEST(AdaptiveLut, ZeroOrNegativeCoinsParkTheClock)
{
    AdaptiveCoinLut lut(power::catalog::fft(), scale());
    EXPECT_DOUBLE_EQ(lut.freqFor(0, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(lut.freqFor(-3, 0.5), 0.0);
}

TEST(AdaptiveLut, InvalidFloorFatal)
{
    EXPECT_THROW(AdaptiveCoinLut(power::catalog::fft(), scale(), 0.0),
                 sim::FatalError);
    EXPECT_THROW(AdaptiveCoinLut(power::catalog::fft(), scale(), 1.5),
                 sim::FatalError);
}

} // namespace
