/**
 * @file
 * Tests for the actuation primitives: LDO, ring oscillator, TDC, PID.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/ldo.hpp"
#include "power/pid.hpp"
#include "power/ring_oscillator.hpp"
#include "power/tdc.hpp"
#include "sim/logging.hpp"

namespace {

using namespace blitz;
using power::Ldo;
using power::LdoConfig;
using power::Pid;
using power::PidConfig;
using power::RingOscillator;
using power::RingOscillatorConfig;
using power::Tdc;

// ------------------------------------------------------------------ LDO

TEST(Ldo, CodeVoltageMappingIsLinear)
{
    Ldo ldo;
    EXPECT_EQ(ldo.codes(), 128);
    EXPECT_DOUBLE_EQ(ldo.voltageForCode(0), 0.45);
    EXPECT_DOUBLE_EQ(ldo.voltageForCode(127), 1.0);
    double mid = ldo.voltageForCode(64);
    EXPECT_GT(mid, 0.7);
    EXPECT_LT(mid, 0.73);
}

TEST(Ldo, CodeForVoltageNeverUnderDelivers)
{
    Ldo ldo;
    for (double v = 0.45; v <= 1.0; v += 0.01) {
        int code = ldo.codeForVoltage(v);
        EXPECT_GE(ldo.voltageForCode(code), v - 1e-12);
    }
    EXPECT_EQ(ldo.codeForVoltage(0.1), 0);
    EXPECT_EQ(ldo.codeForVoltage(2.0), 127);
}

TEST(Ldo, OutputSlewsTowardTarget)
{
    LdoConfig cfg;
    cfg.slewVPerUs = 10.0; // 0.01 V/ns
    Ldo ldo(cfg);
    ldo.setCode(127); // target 1.0 V from 0.45 V
    ldo.step(10.0);   // 10 ns -> at most 0.1 V movement
    EXPECT_NEAR(ldo.voltage(), 0.55, 1e-9);
    for (int i = 0; i < 20; ++i)
        ldo.step(10.0);
    EXPECT_DOUBLE_EQ(ldo.voltage(), 1.0); // reached and held
}

TEST(Ldo, SlewIsSymmetricDownward)
{
    Ldo ldo;
    ldo.forceVoltage(1.0);
    ldo.setCode(0);
    double before = ldo.voltage();
    ldo.step(5.0);
    EXPECT_LT(ldo.voltage(), before);
    for (int i = 0; i < 1000; ++i)
        ldo.step(5.0);
    EXPECT_DOUBLE_EQ(ldo.voltage(), 0.45);
}

TEST(Ldo, SetCodeClamps)
{
    Ldo ldo;
    ldo.setCode(-5);
    EXPECT_EQ(ldo.code(), 0);
    ldo.setCode(1000);
    EXPECT_EQ(ldo.code(), 127);
}

TEST(Ldo, InvalidConfigFatal)
{
    LdoConfig bad;
    bad.vMax = bad.vMin;
    EXPECT_THROW(Ldo{bad}, sim::FatalError);
    LdoConfig bad2;
    bad2.slewVPerUs = 0.0;
    EXPECT_THROW(Ldo{bad2}, sim::FatalError);
}

// ------------------------------------------------------------------- RO

TEST(RingOscillator, LinearAboveThreshold)
{
    RingOscillatorConfig cfg;
    cfg.fMaxMhz = 700.0;
    cfg.vNominal = 1.0;
    cfg.vThreshold = 0.3;
    RingOscillator ro(cfg);
    EXPECT_DOUBLE_EQ(ro.freqAt(1.0), 700.0);
    EXPECT_DOUBLE_EQ(ro.freqAt(0.65), 350.0);
    EXPECT_DOUBLE_EQ(ro.freqAt(0.3), 0.0);
    EXPECT_DOUBLE_EQ(ro.freqAt(0.1), 0.0);
}

TEST(RingOscillator, VoltageForInvertsFreqAt)
{
    RingOscillator ro;
    for (double v = 0.35; v <= 1.0; v += 0.05)
        EXPECT_NEAR(ro.voltageFor(ro.freqAt(v)), v, 1e-12);
}

TEST(RingOscillator, ProcessFactorScalesFrequency)
{
    RingOscillatorConfig fast;
    fast.processFactor = 1.1;
    RingOscillatorConfig slow;
    slow.processFactor = 0.9;
    EXPECT_GT(RingOscillator(fast).freqAt(0.8),
              RingOscillator(slow).freqAt(0.8));
}

TEST(RingOscillator, DroopSlowsClock)
{
    // The UVFR safety property: a voltage droop stretches the clock.
    RingOscillator ro;
    EXPECT_LT(ro.freqAt(0.75), ro.freqAt(0.80));
}

TEST(RingOscillator, InvalidConfigFatal)
{
    RingOscillatorConfig bad;
    bad.vNominal = 0.2; // below threshold
    EXPECT_THROW(RingOscillator{bad}, sim::FatalError);
}

// ------------------------------------------------------------------ TDC

TEST(Tdc, MeasuresEdgeCount)
{
    Tdc tdc(64, 800.0);
    EXPECT_EQ(tdc.measure(800.0), 64);
    EXPECT_EQ(tdc.measure(400.0), 32);
    EXPECT_EQ(tdc.measure(0.0), 0);
    // floor(): partial edges do not count.
    EXPECT_EQ(tdc.measure(409.0), 32);
}

TEST(Tdc, CodeForRoundsToNearest)
{
    Tdc tdc(64, 800.0);
    EXPECT_EQ(tdc.codeFor(800.0), 64);
    EXPECT_EQ(tdc.codeFor(406.0), 32); // 32.48 -> 32
    EXPECT_EQ(tdc.codeFor(419.0), 34); // 33.52 -> 34
}

TEST(Tdc, ResolutionMatchesWindow)
{
    EXPECT_DOUBLE_EQ(Tdc(64, 800.0).resolutionMhz(), 12.5);
    EXPECT_DOUBLE_EQ(Tdc(128, 800.0).resolutionMhz(), 6.25);
}

TEST(Tdc, FreqOfInvertsCodeFor)
{
    Tdc tdc(64, 800.0);
    for (int code = 0; code <= 64; ++code)
        EXPECT_EQ(tdc.codeFor(tdc.freqOf(code)), code);
}

TEST(Tdc, InvalidConfigFatal)
{
    EXPECT_THROW(Tdc(0, 800.0), sim::FatalError);
    EXPECT_THROW(Tdc(64, 0.0), sim::FatalError);
}

// ------------------------------------------------------------------ PID

TEST(Pid, ProportionalResponse)
{
    PidConfig cfg;
    cfg.kp = 2.0;
    cfg.ki = 0.0;
    cfg.kd = 0.0;
    cfg.outMax = 1000.0;
    Pid pid(cfg);
    EXPECT_DOUBLE_EQ(pid.step(10.0), 20.0);
    // Negative command clamps at the default outMin of 0.
    EXPECT_DOUBLE_EQ(pid.step(-5.0), 0.0);
}

TEST(Pid, IntegralEliminatesSteadyError)
{
    PidConfig cfg;
    cfg.kp = 0.0;
    cfg.ki = 0.5;
    cfg.outMax = 100.0;
    Pid pid(cfg);
    double out = 0.0;
    for (int i = 0; i < 10; ++i)
        out = pid.step(4.0);
    EXPECT_NEAR(out, 0.5 * 4.0 * 10, 1e-9); // integral accumulates
}

TEST(Pid, OutputClampsAndAntiWindup)
{
    PidConfig cfg;
    cfg.kp = 0.0;
    cfg.ki = 1.0;
    cfg.outMax = 10.0;
    Pid pid(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_LE(pid.step(5.0), 10.0);
    // After saturation, a reversal must act immediately (no wound-up
    // integral to unwind for hundreds of steps).
    double out = pid.step(-5.0);
    EXPECT_LT(out, 10.0);
}

TEST(Pid, DerivativeDampens)
{
    PidConfig cfg;
    cfg.kp = 1.0;
    cfg.ki = 0.0;
    cfg.kd = 1.0;
    cfg.outMin = -100.0;
    Pid pid(cfg);
    pid.step(10.0);
    // Error shrinking: derivative term is negative, damping output.
    EXPECT_LT(pid.step(8.0), 8.0);
}

TEST(Pid, PrimeSetsStartingOutput)
{
    PidConfig cfg;
    cfg.kp = 0.0;
    cfg.ki = 0.5;
    Pid pid(cfg);
    pid.prime(40.0);
    EXPECT_NEAR(pid.step(0.0), 40.0, 1e-9);
}

TEST(Pid, ResetClearsState)
{
    Pid pid;
    pid.step(50.0);
    pid.step(50.0);
    pid.reset();
    PidConfig def;
    EXPECT_NEAR(pid.step(1.0), def.kp * 1.0 + def.ki * 1.0, 1e-9);
}

TEST(Pid, InvalidRangeFatal)
{
    PidConfig bad;
    bad.outMin = 5.0;
    bad.outMax = 5.0;
    EXPECT_THROW(Pid{bad}, sim::FatalError);
}

} // namespace
