/**
 * @file
 * Steady-state allocation audit for the event kernel and the NoC.
 *
 * The fast-path rewrite's zero-allocation claim, made checkable: this
 * binary replaces the global allocation functions with counting
 * wrappers, warms a workload until every pool (event slab, heap
 * array, packet-event free list) has reached its high-water mark, and
 * then asserts that continuing the same workload performs *zero*
 * further heap allocations.
 *
 * Every replaceable variant is intercepted — including the
 * std::align_val_t forms, which the event slab uses for its node
 * chunks — so a regression cannot hide behind an aligned or nothrow
 * overload.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "record/recorder.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};

void *
countedAlloc(std::size_t bytes)
{
    ++gAllocCount;
    void *p = std::malloc(bytes ? bytes : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t bytes, std::size_t align)
{
    ++gAllocCount;
    // C11 aligned_alloc wants the size rounded to the alignment.
    const std::size_t padded = (bytes + align - 1) / align * align;
    void *p = std::aligned_alloc(align, padded ? padded : align);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    ++gAllocCount;
    return std::malloc(n ? n : 1);
}
void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    ++gAllocCount;
    return std::malloc(n ? n : 1);
}
void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace blitz;

/** Self-rescheduling timer: the kernel's steady-state inner loop. */
struct Timer
{
    sim::EventQueue *eq;
    sim::Tick period;
    void operator()() const { eq->scheduleIn(period, *this); }
};

TEST(AllocCount, EventKernelSteadyStateIsAllocationFree)
{
    sim::EventQueue eq;
    for (int i = 0; i < 96; ++i)
        eq.schedule(1 + i % 5, Timer{&eq, 2 + i % 7});
    // Warmup: slab chunks, heap array, and free lists reach their
    // high-water marks.
    eq.runUntil(4096);

    const std::uint64_t before = gAllocCount.load();
    eq.runUntil(65536);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "steady-state event scheduling allocated";
}

/** Self-rescheduling sender: sustained cross-mesh traffic. */
struct Sender
{
    noc::Network *net;
    sim::EventQueue *eq;
    std::uint32_t state;
    noc::NodeId src;

    void
    operator()()
    {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        noc::Packet p;
        p.src = src;
        p.dst = static_cast<noc::NodeId>(
            state % net->topology().size());
        p.type = noc::MsgType::Generic;
        net->send(p);
        eq->scheduleIn(32, *this);
    }
};

TEST(AllocCount, NocSteadyStateIsAllocationFree)
{
    sim::EventQueue eq;
    noc::Topology topo(6, 6, false);
    noc::Network net(eq, topo);
    std::uint64_t sunk = 0;
    for (noc::NodeId id = 0; id < topo.size(); ++id)
        net.setHandler(id,
                       [&sunk](const noc::Packet &) { ++sunk; });
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        Sender s{&net, &eq, 0x9e3779b9u + id, id};
        eq.schedule(1 + id % 29, s);
    }
    eq.runUntil(16384);

    const std::uint64_t before = gAllocCount.load();
    const std::uint64_t deliveredBefore = net.packetsDelivered();
    eq.runUntil(131072);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "steady-state NoC traffic allocated";
    // The audit must cover real traffic, not an idle queue.
    EXPECT_GT(net.packetsDelivered() - deliveredBefore, 50'000u);
    EXPECT_GT(sunk, 0u);
}

TEST(AllocCount, MegaMeshNocSteadyStateIsAllocationFree)
{
    // 100x100 (10,000 node) mesh: the mega-mesh hot path — batched
    // same-tick delivery, the tick-wheel bucket sort, and the packet
    // pool — must hold the zero-allocation property at four orders of
    // magnitude more nodes than the 6x6 audit above, where any
    // per-node or per-hop hidden allocation would be amplified 10^4x.
    sim::EventQueue eq;
    noc::Topology topo(100, 100, false);
    noc::Network net(eq, topo);
    std::uint64_t sunk = 0;
    for (noc::NodeId id = 0; id < topo.size(); ++id)
        net.setHandler(id,
                       [&sunk](const noc::Packet &) { ++sunk; });
    // One sender per 16th node keeps runtime modest while still
    // keeping thousands of packets in flight across long routes.
    for (noc::NodeId id = 0; id < topo.size(); id += 16) {
        Sender s{&net, &eq, 0x9e3779b9u + id, id};
        eq.schedule(1 + id % 29, s);
    }
    eq.runUntil(8192);

    const std::uint64_t before = gAllocCount.load();
    const std::uint64_t deliveredBefore = net.packetsDelivered();
    eq.runUntil(32768);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "mega-mesh steady-state NoC traffic allocated";
    EXPECT_GT(net.packetsDelivered() - deliveredBefore, 100'000u);
    EXPECT_GT(sunk, 0u);
}

TEST(AllocCount, ShardedNocSteadyStateIsAllocationFree)
{
    // The sharded kernel must keep the zero-allocation property: leaf
    // slabs/heaps, per-shard packet pools, and the cross-shard
    // mailboxes all reach a high-water mark during warmup, after
    // which supersteps, boundary handoffs, and barrier crossings
    // allocate nothing. Workers are real threads here, so this also
    // covers the condvar barrier path.
    sim::EventQueue eq;
    sim::ShardGroup group(eq, 4, sim::columnBands(6, 6, 4));
    noc::Topology topo(6, 6, false);
    noc::Network net(eq, topo);
    net.enableSharding(group);
    // Per-node sinks: deliveries execute at their destination's locus,
    // so each element has exactly one writing shard.
    std::vector<std::uint64_t> sunk(topo.size(), 0);
    std::uint64_t *sp = sunk.data();
    for (noc::NodeId id = 0; id < topo.size(); ++id)
        net.setHandler(id, [sp, id](const noc::Packet &) {
            ++sp[id];
        });
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        Sender s{&net, &eq, 0x9e3779b9u + id, id};
        // scheduleAtNode pins each sender to its own shard; its
        // self-rescheduling then stays there.
        eq.scheduleAtNode(id, 1 + id % 29, s);
    }
    eq.runUntil(16384);

    const std::uint64_t before = gAllocCount.load();
    const std::uint64_t deliveredBefore = net.packetsDelivered();
    eq.runUntil(131072);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "steady-state sharded NoC traffic allocated";
    EXPECT_GT(net.packetsDelivered() - deliveredBefore, 50'000u);
    EXPECT_GT(group.crossEvents(), 0u) << "no boundary traffic";
    std::uint64_t total = 0;
    for (std::uint64_t s : sunk)
        total += s;
    EXPECT_GT(total, 0u);
}

TEST(AllocCount, RingRecorderSteadyStateIsAllocationFree)
{
    // In ring mode the recorder recycles whole chunks once maxChunks
    // are live, so after one full lap around the ring the append path
    // must never touch the heap again — the property that makes
    // always-on black-box recording safe inside the event kernel.
    blitz::record::RecorderConfig cfg;
    cfg.chunkRecords = 64;
    cfg.maxChunks = 4;
    blitz::record::FlightRecorder rec(cfg);

    blitz::record::Record r{};
    r.kind = blitz::record::RecordKind::Transfer;
    // Warmup: allocate every chunk and enter recycling.
    for (std::uint64_t i = 0; i < cfg.chunkRecords * cfg.maxChunks + 1;
         ++i) {
        r.tick = i;
        rec.append(r);
    }
    ASSERT_GT(rec.droppedOldest(), 0u) << "ring never wrapped";

    const std::uint64_t before = gAllocCount.load();
    for (std::uint64_t i = 0; i < 100'000; ++i) {
        r.tick = i;
        rec.append(r);
    }
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "ring-mode recording allocated in steady state";
    // The window is between maxChunks-1 full chunks plus one record
    // and maxChunks full chunks, depending on ring position.
    EXPECT_LE(rec.size(), cfg.chunkRecords * cfg.maxChunks);
    EXPECT_GT(rec.size(), cfg.chunkRecords * (cfg.maxChunks - 1));
}

} // namespace
