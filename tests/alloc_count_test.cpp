/**
 * @file
 * Steady-state allocation audit for the event kernel and the NoC.
 *
 * The fast-path rewrite's zero-allocation claim, made checkable: this
 * binary replaces the global allocation functions with counting
 * wrappers, warms a workload until every pool (event slab, heap
 * array, packet-event free list) has reached its high-water mark, and
 * then asserts that continuing the same workload performs *zero*
 * further heap allocations.
 *
 * Every replaceable variant is intercepted — including the
 * std::align_val_t forms, which the event slab uses for its node
 * chunks — so a regression cannot hide behind an aligned or nothrow
 * overload.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "power/rail.hpp"
#include "power/thermal.hpp"
#include "record/recorder.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"
#include "soc/throttler.hpp"
#include "trace/prof.hpp"

namespace {

std::atomic<std::uint64_t> gAllocCount{0};

void *
countedAlloc(std::size_t bytes)
{
    ++gAllocCount;
    void *p = std::malloc(bytes ? bytes : 1);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
countedAlignedAlloc(std::size_t bytes, std::size_t align)
{
    ++gAllocCount;
    // C11 aligned_alloc wants the size rounded to the alignment.
    const std::size_t padded = (bytes + align - 1) / align * align;
    void *p = std::aligned_alloc(align, padded ? padded : align);
    if (!p)
        throw std::bad_alloc();
    return p;
}

} // namespace

void *operator new(std::size_t n) { return countedAlloc(n); }
void *operator new[](std::size_t n) { return countedAlloc(n); }
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    ++gAllocCount;
    return std::malloc(n ? n : 1);
}
void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    ++gAllocCount;
    return std::malloc(n ? n : 1);
}
void *
operator new(std::size_t n, std::align_val_t a)
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}
void *
operator new[](std::size_t n, std::align_val_t a)
{
    return countedAlignedAlloc(n, static_cast<std::size_t>(a));
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace blitz;

/** Self-rescheduling timer: the kernel's steady-state inner loop. */
struct Timer
{
    sim::EventQueue *eq;
    sim::Tick period;
    void operator()() const { eq->scheduleIn(period, *this); }
};

TEST(AllocCount, EventKernelSteadyStateIsAllocationFree)
{
    sim::EventQueue eq;
    for (int i = 0; i < 96; ++i)
        eq.schedule(1 + i % 5, Timer{&eq, 2 + i % 7});
    // Warmup: slab chunks, heap array, and free lists reach their
    // high-water marks.
    eq.runUntil(4096);

    const std::uint64_t before = gAllocCount.load();
    eq.runUntil(65536);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "steady-state event scheduling allocated";
}

/** Self-rescheduling sender: sustained cross-mesh traffic. */
struct Sender
{
    noc::Network *net;
    sim::EventQueue *eq;
    std::uint32_t state;
    noc::NodeId src;

    void
    operator()()
    {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        noc::Packet p;
        p.src = src;
        p.dst = static_cast<noc::NodeId>(
            state % net->topology().size());
        p.type = noc::MsgType::Generic;
        net->send(p);
        eq->scheduleIn(32, *this);
    }
};

TEST(AllocCount, NocSteadyStateIsAllocationFree)
{
    sim::EventQueue eq;
    noc::Topology topo(6, 6, false);
    noc::Network net(eq, topo);
    std::uint64_t sunk = 0;
    for (noc::NodeId id = 0; id < topo.size(); ++id)
        net.setHandler(id,
                       [&sunk](const noc::Packet &) { ++sunk; });
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        Sender s{&net, &eq, 0x9e3779b9u + id, id};
        eq.schedule(1 + id % 29, s);
    }
    eq.runUntil(16384);

    const std::uint64_t before = gAllocCount.load();
    const std::uint64_t deliveredBefore = net.packetsDelivered();
    eq.runUntil(131072);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "steady-state NoC traffic allocated";
    // The audit must cover real traffic, not an idle queue.
    EXPECT_GT(net.packetsDelivered() - deliveredBefore, 50'000u);
    EXPECT_GT(sunk, 0u);
}

TEST(AllocCount, MegaMeshNocSteadyStateIsAllocationFree)
{
    // 100x100 (10,000 node) mesh: the mega-mesh hot path — batched
    // same-tick delivery, the tick-wheel bucket sort, and the packet
    // pool — must hold the zero-allocation property at four orders of
    // magnitude more nodes than the 6x6 audit above, where any
    // per-node or per-hop hidden allocation would be amplified 10^4x.
    sim::EventQueue eq;
    noc::Topology topo(100, 100, false);
    noc::Network net(eq, topo);
    std::uint64_t sunk = 0;
    for (noc::NodeId id = 0; id < topo.size(); ++id)
        net.setHandler(id,
                       [&sunk](const noc::Packet &) { ++sunk; });
    // One sender per 16th node keeps runtime modest while still
    // keeping thousands of packets in flight across long routes.
    for (noc::NodeId id = 0; id < topo.size(); id += 16) {
        Sender s{&net, &eq, 0x9e3779b9u + id, id};
        eq.schedule(1 + id % 29, s);
    }
    eq.runUntil(8192);

    const std::uint64_t before = gAllocCount.load();
    const std::uint64_t deliveredBefore = net.packetsDelivered();
    eq.runUntil(32768);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "mega-mesh steady-state NoC traffic allocated";
    EXPECT_GT(net.packetsDelivered() - deliveredBefore, 100'000u);
    EXPECT_GT(sunk, 0u);
}

TEST(AllocCount, ShardedNocSteadyStateIsAllocationFree)
{
    // The sharded kernel must keep the zero-allocation property: leaf
    // slabs/heaps, per-shard packet pools, and the cross-shard
    // mailboxes all reach a high-water mark during warmup, after
    // which supersteps, boundary handoffs, and barrier crossings
    // allocate nothing. Workers are real threads here, so this also
    // covers the condvar barrier path.
    sim::EventQueue eq;
    sim::ShardGroup group(eq, 4, sim::columnBands(6, 6, 4));
    noc::Topology topo(6, 6, false);
    noc::Network net(eq, topo);
    net.enableSharding(group);
    // Per-node sinks: deliveries execute at their destination's locus,
    // so each element has exactly one writing shard.
    std::vector<std::uint64_t> sunk(topo.size(), 0);
    std::uint64_t *sp = sunk.data();
    for (noc::NodeId id = 0; id < topo.size(); ++id)
        net.setHandler(id, [sp, id](const noc::Packet &) {
            ++sp[id];
        });
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        Sender s{&net, &eq, 0x9e3779b9u + id, id};
        // scheduleAtNode pins each sender to its own shard; its
        // self-rescheduling then stays there.
        eq.scheduleAtNode(id, 1 + id % 29, s);
    }
    eq.runUntil(16384);

    const std::uint64_t before = gAllocCount.load();
    const std::uint64_t deliveredBefore = net.packetsDelivered();
    eq.runUntil(131072);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "steady-state sharded NoC traffic allocated";
    EXPECT_GT(net.packetsDelivered() - deliveredBefore, 50'000u);
    EXPECT_GT(group.crossEvents(), 0u) << "no boundary traffic";
    std::uint64_t total = 0;
    for (std::uint64_t s : sunk)
        total += s;
    EXPECT_GT(total, 0u);
}

TEST(AllocCount, ProfiledShardedNocSteadyStateIsAllocationFree)
{
    // The introspection plane must not cost the kernel its
    // zero-allocation property: with the superstep profiler attached
    // (per-phase clocks, mailbox matrix, *and* periodic sample rows —
    // whose buffer compacts in place when full) the same sharded
    // steady state performs zero further heap allocations. The probe's
    // slots are sized at attach(), before warmup.
    sim::EventQueue eq;
    sim::ShardGroup group(eq, 4, sim::columnBands(6, 6, 4));
    noc::Topology topo(6, 6, false);
    noc::Network net(eq, topo);
    net.enableSharding(group);
    std::vector<std::uint64_t> sunk(topo.size(), 0);
    std::uint64_t *sp = sunk.data();
    for (noc::NodeId id = 0; id < topo.size(); ++id)
        net.setHandler(id, [sp, id](const noc::Packet &) {
            ++sp[id];
        });
    trace::SuperstepProfiler::Options popts;
    popts.sampleStride = 4; // small stride: force in-place compaction
    popts.maxSamples = 64;
    trace::SuperstepProfiler prof(popts);
    prof.attach(group);
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        Sender s{&net, &eq, 0x9e3779b9u + id, id};
        eq.scheduleAtNode(id, 1 + id % 29, s);
    }
    eq.runUntil(16384);

    const std::uint64_t before = gAllocCount.load();
    eq.runUntil(131072);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "profiled steady-state sharded NoC traffic allocated";
    // Non-vacuity: the probe really measured barriers and compacted
    // its sample buffer inside the audited window.
    EXPECT_GT(prof.probe().supersteps, 0u);
    EXPECT_GT(prof.probe().barriers, 0u);
    EXPECT_GT(prof.probe().rows, 0u);
    EXPECT_GT(prof.probe().stride, 4u)
        << "sample compaction never ran inside the audit";
    EXPECT_GE(prof.imbalance(), 1.0);
}

TEST(AllocCount, PhysicsHotPathSteadyStateIsAllocationFree)
{
    // The physics plane runs inside the event kernel at the sampler
    // cadence, so its whole per-step path — RC integration with
    // couplings, rail current reconstruction with the hysteresis
    // latch, and arbiter engage/release churn — must be heap-free
    // after construction. The square-wave power drive cycles both the
    // thermal trip band and the rail latch so the audit covers the
    // mutation paths, not just the quiescent reads.
    constexpr std::size_t kTiles = 36;
    power::ThermalConfig tc;
    tc.node.cJPerC = 1e-6; // tau = 300 us: trips cycle inside the run
    power::ThermalModel thermal(kTiles, tc);
    for (std::uint32_t i = 0; i + 1 < kTiles; ++i)
        thermal.addCoupling(i, i + 1, 1e-3);
    power::RailSet rails(kTiles);
    power::RailConfig rc;
    rc.limitMa = 900.0; // between the low- and high-phase draw
    rails.addRail(rc);
    for (std::uint32_t t = 0; t < kTiles; ++t)
        rails.assignTile(0, t);
    soc::ThrottleArbiter arb(kTiles);

    double powerMw[kTiles];
    auto drive = [&](std::uint64_t steps, std::uint64_t phase0) {
        for (std::uint64_t s = 0; s < steps; ++s) {
            // 128 us half-period: long enough to heat through the
            // 48 C trip and cool back under 47.5 C each cycle.
            const bool hot = ((phase0 + s) / 256) % 2 == 0;
            for (std::size_t t = 0; t < kTiles; ++t)
                powerMw[t] = hot ? 40.0 : 5.0;
            thermal.step(500.0, powerMw);
            rails.update(powerMw);
            for (std::size_t t = 0; t < kTiles; ++t) {
                if (thermal.temperatureC(t) >= 48.0)
                    arb.set(t, soc::ThrottleSource::Thermal, 400.0);
                else if (thermal.temperatureC(t) <= 47.5)
                    arb.clear(t, soc::ThrottleSource::Thermal);
            }
            if (rails.edge(0) == power::RailEdge::Engaged) {
                for (std::size_t t = 0; t < kTiles; ++t)
                    arb.set(t, soc::ThrottleSource::Rail, 300.0);
            } else if (rails.edge(0) == power::RailEdge::Released) {
                for (std::size_t t = 0; t < kTiles; ++t)
                    arb.clear(t, soc::ThrottleSource::Rail);
            }
        }
    };
    drive(4096, 0);

    const std::uint64_t before = gAllocCount.load();
    const std::uint64_t engagesBefore = arb.engages();
    drive(65536, 4096);
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "physics hot path allocated in steady state";
    // The audit must have exercised real limiter churn, not idle math.
    EXPECT_GT(arb.engages() - engagesBefore, 0u);
    EXPECT_GT(rails.engageCount(0), 0u);
    EXPECT_GT(arb.releases(), 0u);
}

TEST(AllocCount, RingRecorderSteadyStateIsAllocationFree)
{
    // In ring mode the recorder recycles whole chunks once maxChunks
    // are live, so after one full lap around the ring the append path
    // must never touch the heap again — the property that makes
    // always-on black-box recording safe inside the event kernel.
    blitz::record::RecorderConfig cfg;
    cfg.chunkRecords = 64;
    cfg.maxChunks = 4;
    blitz::record::FlightRecorder rec(cfg);

    blitz::record::Record r{};
    r.kind = blitz::record::RecordKind::Transfer;
    // Warmup: allocate every chunk and enter recycling.
    for (std::uint64_t i = 0; i < cfg.chunkRecords * cfg.maxChunks + 1;
         ++i) {
        r.tick = i;
        rec.append(r);
    }
    ASSERT_GT(rec.droppedOldest(), 0u) << "ring never wrapped";

    const std::uint64_t before = gAllocCount.load();
    for (std::uint64_t i = 0; i < 100'000; ++i) {
        r.tick = i;
        rec.append(r);
    }
    EXPECT_EQ(gAllocCount.load() - before, 0u)
        << "ring-mode recording allocated in steady state";
    // The window is between maxChunks-1 full chunks plus one record
    // and maxChunks full chunks, depending on ring position.
    EXPECT_LE(rec.size(), cfg.chunkRecords * cfg.maxChunks);
    EXPECT_GT(rec.size(), cfg.chunkRecords * (cfg.maxChunks - 1));
}

} // namespace
