/**
 * @file
 * Tests for the AP/RP allocation strategies and the coin scale.
 */

#include <gtest/gtest.h>

#include "coin/allocation.hpp"

namespace {

using namespace blitz;
using coin::AllocPolicy;
using coin::CoinScale;
using coin::computeMaxCoins;
using coin::makeScale;

const std::vector<double> pmax3x3{0.0, 55.0, 27.5, 55.0,
                                  180.0, 0.0, 55.0, 27.5, 0.0};

TEST(Allocation, ScaleMapsLargestTileToFullCounter)
{
    CoinScale s = makeScale(120.0, pmax3x3, 6);
    // One coin = Pmax_largest / 63.
    EXPECT_NEAR(s.mwPerCoin(), 180.0 / 63.0, 0.05);
    EXPECT_NEAR(static_cast<double>(s.poolCoins) * s.mwPerCoin(),
                120.0, s.mwPerCoin());
}

TEST(Allocation, PowerOfScalesLinearly)
{
    CoinScale s = makeScale(120.0, pmax3x3, 6);
    EXPECT_NEAR(s.powerOf(10), 10.0 * s.mwPerCoin(), 1e-9);
    EXPECT_DOUBLE_EQ(s.powerOf(0), 0.0);
}

TEST(Allocation, RpIsProportionalToPmax)
{
    CoinScale s = makeScale(120.0, pmax3x3, 6);
    std::vector<bool> active(9, true);
    auto max = computeMaxCoins(AllocPolicy::RelativeProportional,
                               pmax3x3, active, s, 6);
    EXPECT_EQ(max[4], 63); // NVDLA at full scale
    EXPECT_NEAR(static_cast<double>(max[1]), 63.0 * 55.0 / 180.0, 1.0);
    EXPECT_NEAR(static_cast<double>(max[2]), 63.0 * 27.5 / 180.0, 1.0);
    EXPECT_EQ(max[0], 0); // non-accelerator
}

TEST(Allocation, ApGivesEqualTargets)
{
    CoinScale s = makeScale(120.0, pmax3x3, 6);
    std::vector<bool> active(9, true);
    auto max = computeMaxCoins(AllocPolicy::AbsoluteProportional,
                               pmax3x3, active, s, 6);
    // Every active accelerator gets the same max -> equal power split.
    EXPECT_EQ(max[1], max[2]);
    EXPECT_EQ(max[1], max[4]);
    EXPECT_EQ(max[0], 0);
}

TEST(Allocation, InactiveTilesGetZero)
{
    CoinScale s = makeScale(120.0, pmax3x3, 6);
    std::vector<bool> active(9, false);
    active[4] = true;
    auto max = computeMaxCoins(AllocPolicy::RelativeProportional,
                               pmax3x3, active, s, 6);
    EXPECT_EQ(max[4], 63);
    EXPECT_EQ(max[1], 0);
}

TEST(Allocation, TargetsSaturateAtCounterWidth)
{
    // A budget-heavy scale cannot push a target beyond 2^bits - 1.
    CoinScale tiny = makeScale(10.0, pmax3x3, 4);
    std::vector<bool> active(9, true);
    auto max = computeMaxCoins(AllocPolicy::RelativeProportional,
                               pmax3x3, active, tiny, 4);
    for (coin::Coins m : max)
        EXPECT_LE(m, 15);
}

TEST(Allocation, ActiveTileAlwaysGetsAtLeastOneCoinTarget)
{
    // A tiny tile must not round to max = 0 while active.
    CoinScale s = makeScale(500.0, {1.0, 500.0}, 6);
    auto max = computeMaxCoins(AllocPolicy::RelativeProportional,
                               {1.0, 500.0}, {true, true}, s, 6);
    EXPECT_GE(max[0], 1);
}

TEST(Allocation, PolicyNames)
{
    EXPECT_STREQ(coin::allocPolicyName(
                     AllocPolicy::AbsoluteProportional), "AP");
    EXPECT_STREQ(coin::allocPolicyName(
                     AllocPolicy::RelativeProportional), "RP");
}

TEST(Allocation, InvalidInputsFatal)
{
    EXPECT_THROW(makeScale(0.0, pmax3x3, 6), sim::FatalError);
    EXPECT_THROW(makeScale(100.0, {0.0, 0.0}, 6), sim::FatalError);
}

TEST(Allocation, MismatchedVectorsPanic)
{
    CoinScale s = makeScale(120.0, pmax3x3, 6);
    std::vector<bool> wrong(3, true);
    EXPECT_THROW(computeMaxCoins(AllocPolicy::RelativeProportional,
                                 pmax3x3, wrong, s, 6),
                 sim::PanicError);
}

} // namespace
