/**
 * @file
 * Differential test: the analytical scaling model of Section V-E
 * (Equations 5.1-5.3) against the simulator.
 *
 * The model claims T(N) = tau * N^e with e = 1/2 for BlitzCoin's mesh
 * diffusion and e = 1 for the centralized schemes. Each exponent is
 * checked against the observable it actually describes:
 *
 *  - Eq. 5.3 (BC, e = 1/2): time for the coin mesh to diffuse a
 *    cluster-wide imbalance to convergence, measured on d x d meshes —
 *    the paper's Fig. 1/17 experiment. Information travels hop by hop,
 *    so T scales with the mesh diameter ~ sqrt(N).
 *  - Eq. 5.2 (BC-C, e = 1): per-activity-edge response of the
 *    centralized controller, measured on synthetic SoCs of growing
 *    size. Every round polls and reprograms all N managed tiles
 *    sequentially, so T scales with N. (Growth is measured across SoC
 *    sizes: on a *fixed* SoC the controller polls its full cluster no
 *    matter how many tiles the workload uses, so varying only the
 *    workload subset cannot exercise the law.)
 *
 * The tau constants are fitted from the simulated samples — the same
 * regression the paper applies to its measured data — and the tests
 * assert (a) every sample sits within a stated tolerance of its own
 * fitted law, (b) each scheme's data is explained better by its
 * paper-assigned exponent than by the other's, and (c) the fitted laws
 * reproduce the paper's N_max ordering. A final test pins the direct
 * differential on the 6x6 silicon SoC's 7/5/4/3-accelerator workload
 * subsets (Section V-D), where BlitzCoin must answer every activity
 * edge more than an order of magnitude faster than BC-C.
 */

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "analytic/scaling.hpp"
#include "coin/engine.hpp"
#include "power/pf_curve.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "sweep/sweep.hpp"
#include "workload/dag.hpp"

namespace {

using namespace blitz;
using analytic::ScalingLaw;
using analytic::Scheme;
using soc::PmKind;
using soc::Soc;

/**
 * Mean time (us) for a d x d coin mesh to converge from the standard
 * half-demand provisioning, averaged over @p seeds runs (paper-default
 * engine parameters, same setup as the Fig. 1 bench).
 */
double
meshConvergenceUs(int d, int seeds)
{
    double sum = 0.0;
    for (int i = 0; i < seeds; ++i) {
        coin::MeshSim sim(noc::Topology::square(d), coin::EngineConfig{},
                          sweep::streamSeed(2024, static_cast<std::size_t>(i)));
        coin::Coins demand = 0;
        for (std::size_t t = 0; t < sim.ledger().size(); ++t) {
            const coin::Coins m = 8 << (t % 3);
            sim.setMax(t, m);
            demand += m;
        }
        sim.clusterHas(demand / 2);
        const auto r = sim.runUntilConverged(1.0, sim::msToTicks(20.0));
        EXPECT_TRUE(r.converged) << "d=" << d << " seed index " << i;
        sum += sim::ticksToUs(r.time);
    }
    return sum / seeds;
}

/**
 * Mean per-edge PM response (us) of a scheme on the d x d synthetic
 * SoC under a staggered all-accelerator parallel workload. One seed:
 * the centralized round is deterministic, and BlitzCoin's seed noise
 * is well under the asserted tolerances.
 */
double
syntheticResponseUs(PmKind kind, int d)
{
    const auto cfg = soc::makeSyntheticSoc(d, power::catalog::fft());
    const auto managed = cfg.managedAccelerators();
    soc::PmConfig pm;
    pm.kind = kind;
    pm.budgetMw = 12.5 * static_cast<double>(managed.size());
    Soc s(cfg, pm, /*seed=*/3);
    workload::Dag dag;
    double us = 200.0;
    for (noc::NodeId id : managed) {
        dag.add(cfg.tile(id).name, id, us * cfg.tile(id).curve->fMax());
        us += 10.0;
    }
    const auto st = s.run(dag);
    EXPECT_TRUE(st.completed) << "d=" << d;
    EXPECT_GT(st.responseTicks.count(), 0u) << "d=" << d;
    return st.meanResponseUs();
}

/**
 * BC samples: (N, T_us) over meshes d = 6, 8, 10, 12. Smaller meshes
 * sit on the constant exchange-round floor (Eq. 5.3's tau * sqrt(N)
 * has no offset term), so the fit starts where diffusion dominates.
 */
std::vector<std::pair<double, double>>
blitzcoinSamples()
{
    std::vector<std::pair<double, double>> samples;
    for (int d : {6, 8, 10, 12})
        samples.emplace_back(d * d, meshConvergenceUs(d, /*seeds=*/12));
    return samples;
}

/**
 * BC-C samples: (N, T_us) over synthetic SoCs d = 3, 4, 5 (N = 8, 15,
 * 24 managed accelerators). Larger SoCs leave the linear regime for a
 * different reason than Eq. 5.2 models: activity edges arrive faster
 * than rounds complete and coalesce into shared rounds.
 */
std::vector<std::pair<double, double>>
centralSamples()
{
    std::vector<std::pair<double, double>> samples;
    for (int d : {3, 4, 5}) {
        const double n = static_cast<double>(d) * d - 1;
        samples.emplace_back(
            n, syntheticResponseUs(PmKind::BlitzCoinCentral, d));
    }
    return samples;
}

/** Root-mean-square relative residual of @p law over @p samples. */
double
relativeResidual(const ScalingLaw &law,
                 const std::vector<std::pair<double, double>> &samples)
{
    double sum = 0.0;
    for (const auto &[n, t] : samples) {
        const double rel = (t - law.responseUs(n)) / t;
        sum += rel * rel;
    }
    return std::sqrt(sum / static_cast<double>(samples.size()));
}

TEST(AnalyticVsSim, BlitzCoinDiffusionFollowsSqrtLaw)
{
    const auto samples = blitzcoinSamples();
    const ScalingLaw law = fitLaw(Scheme::BC, samples);
    EXPECT_GT(law.tauUs, 0.0);
    // Stated tolerance: every measured point within 15% of the fitted
    // Eq. 5.3 prediction (measured spread is ~7%; the wrong exponent
    // misses by up to ~45%, see the cross-exponent test).
    for (const auto &[n, t] : samples) {
        const double predicted = law.responseUs(n);
        EXPECT_NEAR(t, predicted, 0.15 * predicted)
            << "N=" << n << " measured=" << t << "us"
            << " predicted=" << predicted << "us";
    }
}

TEST(AnalyticVsSim, MegaMesh100x100FollowsSqrtLawDirectly)
{
    // Direct mega-mesh validation of Eq. 5.1's sqrt(N) claim: fit the
    // law on small meshes (d = 6..12, N <= 144) and then run a real
    // 100x100 diffusion — a 70x extrapolation in N — rather than only
    // interpolating within the fitted range. The measured convergence
    // time must sit near the sqrt(N) prediction, and the wrong
    // (linear, Eq. 5.2-shaped) exponent fitted on the same small
    // meshes must miss the 10,000-node point by a wide margin — the
    // discrimination that makes this a law test, not a tolerance test.
    const auto small = blitzcoinSamples();
    const ScalingLaw sqrtLaw = fitLaw(Scheme::BC, small);
    const ScalingLaw linearLaw = fitLaw(Scheme::BCC, small);

    const double n = 100.0 * 100.0;
    const double measured = meshConvergenceUs(100, /*seeds=*/4);
    const double predicted = sqrtLaw.responseUs(n);
    // Observed extrapolation error is ~20%; 35% leaves seed-noise
    // headroom while still excluding any competing exponent.
    EXPECT_NEAR(measured, predicted, 0.35 * predicted)
        << "measured=" << measured << "us predicted=" << predicted
        << "us";
    const double sqrtMiss =
        std::abs(std::log(measured / predicted));
    const double linearMiss =
        std::abs(std::log(measured / linearLaw.responseUs(n)));
    EXPECT_GT(linearMiss, 3.0 * sqrtMiss)
        << "sqrt(N) should explain the 100x100 point decisively "
           "better than linear: sqrt predicts "
        << predicted << "us, linear predicts "
        << linearLaw.responseUs(n) << "us, measured " << measured
        << "us";
}

TEST(AnalyticVsSim, CentralizedControllerFollowsLinearLaw)
{
    const auto samples = centralSamples();
    const ScalingLaw law = fitLaw(Scheme::BCC, samples);
    EXPECT_GT(law.tauUs, 0.0);
    // Stated tolerance: 20% (measured spread is ~10%; Eq. 5.2 has no
    // offset term while the simulated round carries a fixed firmware
    // overhead, which accounts for most of the residual).
    for (const auto &[n, t] : samples) {
        const double predicted = law.responseUs(n);
        EXPECT_NEAR(t, predicted, 0.20 * predicted)
            << "N=" << n << " measured=" << t << "us"
            << " predicted=" << predicted << "us";
    }
}

TEST(AnalyticVsSim, SchemesPreferTheirPaperAssignedExponents)
{
    const auto bc = blitzcoinSamples();
    const auto bcc = centralSamples();

    // Fit each data set under both candidate exponents; the residual
    // under the paper's exponent must win.
    const double bcSqrt = relativeResidual(fitLaw(Scheme::BC, bc), bc);
    const double bcLinear = relativeResidual(fitLaw(Scheme::BCC, bc), bc);
    const double bccLinear =
        relativeResidual(fitLaw(Scheme::BCC, bcc), bcc);
    const double bccSqrt = relativeResidual(fitLaw(Scheme::BC, bcc), bcc);

    EXPECT_LT(bcSqrt, bcLinear)
        << "BC diffusion data should prefer e=1/2 (Eq. 5.3)";
    EXPECT_LT(bccLinear, bccSqrt)
        << "BC-C controller data should prefer e=1 (Eq. 5.2)";
}

TEST(AnalyticVsSim, FittedLawsReproducePaperOrdering)
{
    // With both taus fitted from simulation, BlitzCoin must support
    // more accelerators at the paper's 7 ms phase duration (Fig. 19's
    // headline claim), and the gap must widen with Tw.
    const ScalingLaw bc = fitLaw(Scheme::BC, blitzcoinSamples());
    const ScalingLaw bcc = fitLaw(Scheme::BCC, centralSamples());
    EXPECT_GT(bc.nMax(7'000.0), bcc.nMax(7'000.0));
    EXPECT_GT(bc.nMax(70'000.0) / bcc.nMax(70'000.0),
              bc.nMax(7'000.0) / bcc.nMax(7'000.0));
}

TEST(AnalyticVsSim, SiliconSubsetsOrderSchemesAtEveryConfig)
{
    // The direct differential at the paper's measured configurations:
    // the 6x6 silicon SoC driving 7/5/4/3 accelerators of its PM
    // cluster (Section V-D). BlitzCoin settles each activity edge
    // locally while BC-C pays a full controller round, so BC must win
    // every subset by a wide margin, and BC-C's response must not
    // shrink as the subset grows.
    double lastCentral = 0.0;
    for (int accels : {3, 4, 5, 7}) {
        auto respond = [&](PmKind kind) {
            soc::PmConfig pm;
            pm.kind = kind;
            pm.budgetMw = soc::budgets::silicon;
            Soc s(soc::make6x6SiliconSoc(), pm, /*seed=*/31);
            const auto st = s.run(soc::siliconWorkload(s.config(), accels));
            EXPECT_TRUE(st.completed) << "accels=" << accels;
            EXPECT_GT(st.responseTicks.count(), 0u) << "accels=" << accels;
            return st.meanResponseUs();
        };
        const double bc = respond(PmKind::BlitzCoin);
        const double bcc = respond(PmKind::BlitzCoinCentral);
        EXPECT_LT(bc * 5.0, bcc) << "accels=" << accels;
        EXPECT_GE(bcc, lastCentral) << "accels=" << accels;
        lastCentral = bcc;
    }
}

} // namespace
