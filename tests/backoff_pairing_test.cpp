/**
 * @file
 * Tests for dynamic timing (exponential back-off) and partner
 * selection (neighbor rotation + randomized pairing).
 */

#include <gtest/gtest.h>

#include <set>

#include "coin/backoff.hpp"
#include "coin/pairing.hpp"
#include "sim/rng.hpp"

namespace {

using namespace blitz;
using coin::BackoffConfig;
using coin::BackoffTimer;
using coin::PairingConfig;
using coin::PartnerSelector;

// -------------------------------------------------------------- backoff

TEST(Backoff, StartsAtBaseInterval)
{
    BackoffConfig cfg;
    cfg.baseInterval = 32;
    BackoffTimer t(cfg);
    EXPECT_EQ(t.interval(), 32u);
}

TEST(Backoff, GrowsByLambdaOnIdleExchange)
{
    BackoffConfig cfg;
    cfg.baseInterval = 16;
    cfg.lambda = 2.0;
    cfg.maxInterval = 100;
    BackoffTimer t(cfg);
    t.onExchange(false);
    EXPECT_EQ(t.interval(), 32u);
    t.onExchange(false);
    EXPECT_EQ(t.interval(), 64u);
    t.onExchange(false);
    EXPECT_EQ(t.interval(), 100u); // clamped at max
    t.onExchange(false);
    EXPECT_EQ(t.interval(), 100u);
}

TEST(Backoff, ShrinksOnCoinMovement)
{
    BackoffConfig cfg;
    cfg.baseInterval = 16;
    cfg.k = 4;
    cfg.minInterval = 8;
    BackoffTimer t(cfg);
    t.onExchange(true);
    EXPECT_EQ(t.interval(), 12u);
    t.onExchange(true);
    EXPECT_EQ(t.interval(), 8u); // floor
    t.onExchange(true);
    EXPECT_EQ(t.interval(), 8u);
}

TEST(Backoff, MovementSnapsBackedOffTimerToBase)
{
    BackoffConfig cfg;
    cfg.baseInterval = 16;
    cfg.lambda = 2.0;
    cfg.k = 4;
    cfg.maxInterval = 2048;
    BackoffTimer t(cfg);
    for (int i = 0; i < 10; ++i)
        t.onExchange(false);
    EXPECT_EQ(t.interval(), 2048u);
    t.onExchange(true);
    EXPECT_LE(t.interval(), 16u); // snapped to (below) base
}

TEST(Backoff, ResetOnActivityRestoresBase)
{
    BackoffConfig cfg;
    cfg.baseInterval = 16;
    BackoffTimer t(cfg);
    for (int i = 0; i < 5; ++i)
        t.onExchange(false);
    t.resetOnActivity();
    EXPECT_EQ(t.interval(), 16u);
}

TEST(Backoff, DisabledTimerNeverMoves)
{
    BackoffConfig cfg;
    cfg.enabled = false;
    cfg.baseInterval = 24;
    BackoffTimer t(cfg);
    t.onExchange(false);
    t.onExchange(true);
    EXPECT_EQ(t.interval(), 24u);
}

TEST(Backoff, DiscontentCapsInterval)
{
    BackoffConfig cfg;
    cfg.baseInterval = 16;
    cfg.discontentCap = 64;
    BackoffTimer t(cfg);
    for (int i = 0; i < 10; ++i)
        t.onExchange(false);
    EXPECT_GT(t.interval(), 64u);
    EXPECT_EQ(t.intervalFor(true), 64u);
    EXPECT_EQ(t.intervalFor(false), t.interval());
}

TEST(Backoff, DiscontentCapIsInactiveBelowTheCeiling)
{
    // The cap is a ceiling, not a target: while the interval is still
    // short, a discontent tile keeps its own cadence.
    BackoffConfig cfg;
    cfg.baseInterval = 16;
    cfg.discontentCap = 64;
    BackoffTimer t(cfg);
    EXPECT_EQ(t.intervalFor(true), 16u);
    t.onExchange(false); // 32, still under the cap
    EXPECT_EQ(t.intervalFor(true), 32u);
    EXPECT_EQ(t.intervalFor(false), 32u);
}

TEST(Backoff, DiscontentCapDoesNotMutateTheInterval)
{
    // intervalFor() is a read-side clamp; the stored interval keeps
    // its backed-off value so a content tile resumes where it was.
    BackoffConfig cfg;
    cfg.baseInterval = 16;
    cfg.discontentCap = 64;
    cfg.maxInterval = 2048;
    BackoffTimer t(cfg);
    for (int i = 0; i < 10; ++i)
        t.onExchange(false);
    ASSERT_EQ(t.interval(), 2048u);
    EXPECT_EQ(t.intervalFor(true), 64u);
    EXPECT_EQ(t.interval(), 2048u); // unchanged by the query
    EXPECT_EQ(t.intervalFor(false), 2048u);
}

TEST(Backoff, SnapFromMaxIntervalLandsAtBaseMinusShrink)
{
    // From a fully backed-off state, one coin movement must snap the
    // timer to the base cadence and then apply the k shrink — not
    // walk down from maxInterval k at a time.
    BackoffConfig cfg;
    cfg.baseInterval = 32;
    cfg.lambda = 2.0;
    cfg.k = 8;
    cfg.minInterval = 8;
    cfg.maxInterval = 2048;
    BackoffTimer t(cfg);
    for (int i = 0; i < 12; ++i)
        t.onExchange(false);
    ASSERT_EQ(t.interval(), 2048u);
    t.onExchange(true);
    // snap to base (32), then 32 > k + min = 16, so shrink to 24.
    EXPECT_EQ(t.interval(), 24u);
}

TEST(Backoff, SnapShortCircuitsToMinWhenBaseIsWithinShrink)
{
    // With base <= k + min the snapped interval cannot shed a full k
    // without breaching the floor; it must land exactly on min.
    BackoffConfig cfg;
    cfg.baseInterval = 16;
    cfg.k = 8;
    cfg.minInterval = 8;
    cfg.maxInterval = 2048;
    BackoffTimer t(cfg);
    for (int i = 0; i < 10; ++i)
        t.onExchange(false);
    ASSERT_EQ(t.interval(), 2048u);
    t.onExchange(true);
    EXPECT_EQ(t.interval(), 8u);
}

TEST(Backoff, SnapDoesNotLiftAShortInterval)
{
    // A timer already below base stays below base on movement; the
    // snap is min(interval, base), never a raise.
    BackoffConfig cfg;
    cfg.baseInterval = 32;
    cfg.k = 4;
    cfg.minInterval = 8;
    BackoffTimer t(cfg);
    t.onExchange(true); // 32 -> 28
    t.onExchange(true); // 28 -> 24
    ASSERT_EQ(t.interval(), 24u);
    t.onExchange(true);
    EXPECT_EQ(t.interval(), 20u); // not re-snapped up to 32
}

TEST(Backoff, UnitLambdaStillGrowsByTheFloor)
{
    // The interval_ + 1 floor guarantees progress even when the
    // multiplicative growth rounds to no change at all (lambda = 1).
    BackoffConfig cfg;
    cfg.baseInterval = 10;
    cfg.lambda = 1.0;
    cfg.maxInterval = 14;
    BackoffTimer t(cfg);
    t.onExchange(false);
    EXPECT_EQ(t.interval(), 11u);
    t.onExchange(false);
    EXPECT_EQ(t.interval(), 12u);
    t.onExchange(false);
    t.onExchange(false);
    EXPECT_EQ(t.interval(), 14u); // clamped at max
    t.onExchange(false);
    EXPECT_EQ(t.interval(), 14u);
}

TEST(Backoff, GrowthAlwaysMakesProgress)
{
    // Even with lambda very close to 1, the interval must strictly
    // grow (rounding must not pin it).
    BackoffConfig cfg;
    cfg.baseInterval = 10;
    cfg.lambda = 1.01;
    BackoffTimer t(cfg);
    sim::Tick prev = t.interval();
    for (int i = 0; i < 20; ++i) {
        t.onExchange(false);
        EXPECT_GT(t.interval(), prev);
        prev = t.interval();
    }
}

TEST(Backoff, InvalidConfigPanics)
{
    BackoffConfig bad;
    bad.minInterval = 0;
    EXPECT_THROW(BackoffTimer{bad}, sim::PanicError);
    BackoffConfig bad2;
    bad2.lambda = 0.5;
    EXPECT_THROW(BackoffTimer{bad2}, sim::PanicError);
}

// -------------------------------------------------------------- pairing

TEST(Pairing, RotatesThroughAllNeighbors)
{
    noc::Topology topo(4, 4, true);
    sim::Rng rng(1);
    PairingConfig cfg;
    cfg.randomPairing = false;
    PartnerSelector sel(topo, 5, cfg, rng);

    std::set<noc::NodeId> seen;
    for (int i = 0; i < 4; ++i)
        seen.insert(sel.next());
    auto expected = topo.neighbors(5);
    EXPECT_EQ(seen.size(), expected.size());
    for (noc::NodeId n : expected)
        EXPECT_TRUE(seen.count(n)) << "neighbor " << n << " skipped";
}

TEST(Pairing, RandomPairingEveryPeriod)
{
    noc::Topology topo(5, 5, true);
    sim::Rng rng(2);
    PairingConfig cfg;
    cfg.randomPairing = true;
    cfg.period = 16;
    PartnerSelector sel(topo, 12, cfg, rng);

    int far_count = 0;
    for (int i = 1; i <= 160; ++i) {
        sel.next();
        if (sel.lastWasRandom()) {
            ++far_count;
            EXPECT_EQ(i % 16, 0) << "random pairing off-schedule";
        }
    }
    EXPECT_EQ(far_count, 10);
}

TEST(Pairing, RandomPartnersAreNonNeighbors)
{
    noc::Topology topo(5, 5, true);
    sim::Rng rng(3);
    PairingConfig cfg;
    cfg.period = 4;
    PartnerSelector sel(topo, 12, cfg, rng);
    auto neighbors = topo.neighbors(12);

    for (int i = 0; i < 200; ++i) {
        noc::NodeId p = sel.next();
        EXPECT_NE(p, 12u);
        if (sel.lastWasRandom()) {
            EXPECT_EQ(std::find(neighbors.begin(), neighbors.end(), p),
                      neighbors.end());
        }
    }
}

TEST(Pairing, LfsrWalkCoversAllNonNeighbors)
{
    // The hardware guarantee (Section III-E): the shift register pairs
    // every non-neighbor within a fixed time.
    noc::Topology topo(4, 4, true);
    sim::Rng rng(4);
    PairingConfig cfg;
    cfg.period = 2; // every other exchange is far, for test speed
    cfg.mode = coin::PairingMode::Lfsr;
    PartnerSelector sel(topo, 0, cfg, rng);

    const std::size_t far_total =
        topo.size() - 1 - topo.neighbors(0).size();
    std::set<noc::NodeId> far_seen;
    for (std::size_t i = 0; i < 4 * far_total; ++i) {
        noc::NodeId p = sel.next();
        if (sel.lastWasRandom())
            far_seen.insert(p);
    }
    EXPECT_EQ(far_seen.size(), far_total);
}

TEST(Pairing, UniformModeStaysLegal)
{
    noc::Topology topo(4, 4, true);
    sim::Rng rng(5);
    PairingConfig cfg;
    cfg.period = 3;
    cfg.mode = coin::PairingMode::Uniform;
    PartnerSelector sel(topo, 7, cfg, rng);
    for (int i = 0; i < 100; ++i) {
        noc::NodeId p = sel.next();
        EXPECT_NE(p, 7u);
        EXPECT_LT(p, topo.size());
    }
}

TEST(Pairing, ExplicitListsConstructor)
{
    sim::Rng rng(6);
    PairingConfig cfg;
    cfg.period = 4;
    PartnerSelector sel({10u, 20u}, {30u, 40u}, cfg, rng);
    std::set<noc::NodeId> near, far;
    for (int i = 0; i < 40; ++i) {
        noc::NodeId p = sel.next();
        (sel.lastWasRandom() ? far : near).insert(p);
    }
    EXPECT_EQ(near, (std::set<noc::NodeId>{10u, 20u}));
    EXPECT_EQ(far, (std::set<noc::NodeId>{30u, 40u}));
}

TEST(Pairing, ExplicitListsWithoutRandomPairing)
{
    sim::Rng rng(7);
    PairingConfig cfg;
    cfg.randomPairing = false;
    PartnerSelector sel({3u}, {9u}, cfg, rng);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(sel.next(), 3u);
        EXPECT_FALSE(sel.lastWasRandom());
    }
}

TEST(Pairing, EmptyNeighborListPanics)
{
    sim::Rng rng(8);
    PairingConfig cfg;
    EXPECT_THROW(PartnerSelector({}, {1u}, cfg, rng), sim::PanicError);
}

TEST(Pairing, ForceFarOverridesPeriod)
{
    sim::Rng rng(9);
    PairingConfig cfg;
    cfg.period = 16;
    PartnerSelector sel({1u, 2u}, {8u, 9u}, cfg, rng);
    for (int i = 0; i < 10; ++i) {
        noc::NodeId p = sel.next(/*forceFar=*/true);
        EXPECT_TRUE(p == 8u || p == 9u);
        EXPECT_TRUE(sel.lastWasRandom());
    }
}

TEST(Pairing, ForceFarWithoutFarListFallsBack)
{
    sim::Rng rng(10);
    PairingConfig cfg;
    PartnerSelector sel({3u}, {}, cfg, rng);
    EXPECT_EQ(sel.next(/*forceFar=*/true), 3u);
    EXPECT_FALSE(sel.lastWasRandom());
}

// ---------------------------------------------------------- isolation

TEST(Isolation, TriggersAfterIdleStreak)
{
    coin::IsolationDetector iso(4);
    for (int i = 0; i < 3; ++i) {
        iso.onExchange(/*moved=*/false, /*partnerMax=*/0);
        EXPECT_FALSE(iso.isolated());
    }
    iso.onExchange(false, 0);
    EXPECT_TRUE(iso.isolated());
}

TEST(Isolation, CoinMovementClearsStreak)
{
    coin::IsolationDetector iso(4);
    for (int i = 0; i < 3; ++i)
        iso.onExchange(false, 0);
    iso.onExchange(/*moved=*/true, 0);
    EXPECT_FALSE(iso.isolated());
    for (int i = 0; i < 3; ++i)
        iso.onExchange(false, 0);
    EXPECT_FALSE(iso.isolated());
}

TEST(Isolation, ActiveBalancedPartnerClearsStreak)
{
    // A zero-move exchange with an *active* partner is evidence the
    // distribution is fine, not that the tile is stranded.
    coin::IsolationDetector iso(4);
    for (int i = 0; i < 3; ++i)
        iso.onExchange(false, 0);
    iso.onExchange(false, /*partnerMax=*/16);
    EXPECT_FALSE(iso.isolated());
}

TEST(Isolation, ResetClears)
{
    coin::IsolationDetector iso(2);
    iso.onExchange(false, 0);
    iso.onExchange(false, 0);
    ASSERT_TRUE(iso.isolated());
    iso.reset();
    EXPECT_FALSE(iso.isolated());
}

} // namespace
