/**
 * @file
 * Byzantine-adversary and integrity-guardian tests.
 *
 * Attack side: each ByzantineBehavior measurably breaks the economy
 * when nothing defends it (counterfeit coins survive, payouts are
 * refused, stale updates are re-injected). Defense side: the guardian
 * detects every behavior from neighbor-local evidence alone, walks the
 * warn -> throttle -> quarantine ladder, and the audit watchdog
 * reclaims the fenced coins so the budget is conserved within the
 * configured leak bound. An honest mesh under heavy *benign* faults
 * must never trip a single escalation (the false-positive gate), and
 * one full attack trial must be bit-identical at shard counts 1/2/4.
 *
 * Every suite name starts with "Byzantine" so the tsan preset's name
 * filter picks the whole file up.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>

#include "fault/chaos.hpp"
#include "record/provenance.hpp"
#include "record/recorder.hpp"

namespace {

using namespace blitz;
using fault::ByzantineBehavior;
using fault::ByzantineSpec;
using fault::ChaosCluster;
using fault::ChaosConfig;

/**
 * Heterogeneous demand (8/16/32 by tile), whole pool parked on the
 * first quarter — the fig01/chaos seeding, so convergence requires
 * long-range transport past any compromised tile.
 */
coin::Coins
seedMesh(ChaosCluster &c)
{
    const std::size_t n = c.size();
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < n; ++i) {
        coin::Coins m = 8 << (i % 3);
        c.setMax(i, m);
        demand += m;
    }
    const coin::Coins pool = demand / 2;
    const std::size_t quarter = std::max<std::size_t>(n / 4, 1);
    for (std::size_t i = 0; i < quarter; ++i) {
        coin::Coins share = pool / static_cast<coin::Coins>(quarter);
        if (i < static_cast<std::size_t>(
                    pool % static_cast<coin::Coins>(quarter)))
            ++share;
        c.setHas(i, share);
    }
    c.sealProvision();
    c.startAll();
    return pool;
}

/** 4x4 config with one compromised tile; guardian optional. */
ChaosConfig
attackConfig(const ByzantineSpec &spec, bool guardian)
{
    ChaosConfig cc;
    cc.width = 4;
    cc.height = 4;
    cc.seedBase = 77;
    cc.byzantine.specs.push_back(spec);
    if (guardian) {
        cc.guardianEnabled = true;
        cc.auditPeriod = 4096;
    }
    return cc;
}

/** Stop initiation everywhere and drain in-flight traffic. */
void
drain(ChaosCluster &c, sim::Tick ticks = 20'000)
{
    for (std::size_t i = 0; i < c.size(); ++i)
        c.unit(i).stop();
    c.eq().runUntil(c.eq().now() + ticks);
}

// ------------------------------------------------- undefended attacks

TEST(ByzantineAttack, InflatorOverdrawsExactlyWithoutGuardian)
{
    // No guardian, no audit: every counterfeit coin survives, and the
    // cluster total exceeds the seeded pool by exactly the mint count.
    ByzantineSpec spec;
    spec.node = 5;
    spec.behavior = ByzantineBehavior::Inflator;
    spec.amount = 8;
    spec.period = 512;
    ChaosCluster c(attackConfig(spec, /*guardian=*/false));
    const coin::Coins pool = seedMesh(c);
    c.eq().runUntil(60'000);
    drain(c);

    ASSERT_NE(c.byzantinePlan(), nullptr);
    const auto st = c.byzantinePlan()->stats();
    EXPECT_GT(st.pulses, 0u);
    EXPECT_EQ(st.counterfeited,
              static_cast<coin::Coins>(st.pulses) * spec.amount);
    EXPECT_EQ(c.totalCoins(), pool + st.counterfeited)
        << "counterfeit coins leaked or vanished untracked";
}

TEST(ByzantineAttack, ReplyForgerSkimsExactlyWithoutGuardian)
{
    // Forged replies apply more locally than they report back; each
    // forgery mints `amount` coins into the forger's counter.
    ByzantineSpec spec;
    spec.node = 5;
    spec.behavior = ByzantineBehavior::ReplyForger;
    spec.amount = 4;
    ChaosCluster c(attackConfig(spec, /*guardian=*/false));
    const coin::Coins pool = seedMesh(c);
    c.eq().runUntil(60'000);
    drain(c);

    const auto st = c.byzantinePlan()->stats();
    EXPECT_GT(st.forgedReplies, 0u);
    EXPECT_EQ(st.counterfeited,
              static_cast<coin::Coins>(st.forgedReplies) * spec.amount);
    EXPECT_EQ(c.totalCoins(), pool + st.counterfeited);
}

TEST(ByzantineAttack, StuckGreedyStarvesTheHonestTilesWithoutGuardian)
{
    // The hoarder claims desperation and refuses every payout: coins
    // pile up on it and the honest tiles run under their fair share.
    ByzantineSpec spec;
    spec.node = 1; // inside the coin-rich first quarter
    spec.behavior = ByzantineBehavior::StuckGreedy;
    ChaosCluster c(attackConfig(spec, /*guardian=*/false));
    const coin::Coins pool = seedMesh(c);
    c.eq().runUntil(60'000);
    drain(c);

    const auto st = c.byzantinePlan()->stats();
    EXPECT_GT(st.refusedPayouts, 0u);
    EXPECT_GT(st.lyingStatuses, 0u);
    EXPECT_EQ(c.totalCoins(), pool) << "hoarding must not mint";
    // Fair share at alpha = 1/2 for max = 16 is 8; the hoarder must
    // have drawn well past it while honest tiles starve.
    EXPECT_GT(c.unit(1).has(), 16);
}

// --------------------------------------------- detection + quarantine

TEST(ByzantineGuardian, InflatorIsQuarantinedAndBudgetReclaimed)
{
    ByzantineSpec spec;
    spec.node = 5;
    spec.behavior = ByzantineBehavior::Inflator;
    spec.amount = 8;
    spec.period = 512;
    ChaosCluster c(attackConfig(spec, /*guardian=*/true));
    const coin::Coins pool = seedMesh(c);
    c.eq().runUntil(120'000);

    ASSERT_NE(c.guardian(), nullptr);
    EXPECT_EQ(c.guardian()->health(5),
              blitzcoin::TileHealth::Quarantined);
    EXPECT_TRUE(c.unit(5).quarantined());
    EXPECT_EQ(c.guardian()->quarantines(), 1u);
    EXPECT_GT(c.guardian()->detections(), 0u);
    // Neighbors re-formed the exchange mesh around the hole.
    EXPECT_TRUE(c.unit(1).isShunned(5));
    EXPECT_TRUE(c.unit(4).isShunned(5));
    EXPECT_TRUE(c.unit(6).isShunned(5));
    EXPECT_TRUE(c.unit(9).isShunned(5));
    // The driver stops permanently on quarantine: the mint counter
    // must be frozen from here on.
    const auto minted = c.byzantinePlan()->stats().counterfeited;
    c.eq().runUntil(c.eq().now() + 20'000);
    EXPECT_EQ(c.byzantinePlan()->stats().counterfeited, minted);

    // Budget: fenced coins were reminted to the honest tiles; within
    // the leak bound while running, exact after a final sweep.
    const coin::Coins leak = c.guardian()->config().leakBound;
    EXPECT_LE(std::abs(c.totalCoins() - pool), leak);
    drain(c);
    c.reconcile();
    EXPECT_EQ(c.totalCoins(), pool);
}

TEST(ByzantineGuardian, ReplyForgerIsCaughtByConservationBooks)
{
    ByzantineSpec spec;
    spec.node = 5;
    spec.behavior = ByzantineBehavior::ReplyForger;
    spec.amount = 4;
    ChaosCluster c(attackConfig(spec, /*guardian=*/true));
    const coin::Coins pool = seedMesh(c);
    c.eq().runUntil(120'000);

    EXPECT_EQ(c.guardian()->health(5),
              blitzcoin::TileHealth::Quarantined);
    // The forger's lies pollute its victims' books (its sentry
    // overstates what they gained), so its neighbors ride the same
    // strike timeline it does. The one-conviction-per-sweep rule plus
    // the amnesty that vacates the convicted liar's testimony must
    // leave every honest tile fully healthy.
    for (std::size_t i = 0; i < c.size(); ++i) {
        if (i == 5)
            continue;
        EXPECT_EQ(c.guardian()->health(static_cast<noc::NodeId>(i)),
                  blitzcoin::TileHealth::Healthy)
            << "honest tile " << i;
    }
    drain(c);
    c.reconcile();
    EXPECT_EQ(c.totalCoins(), pool);
}

TEST(ByzantineGuardian, SpammerIsThrottledThenQuarantined)
{
    ByzantineSpec spec;
    spec.node = 5;
    spec.behavior = ByzantineBehavior::Spammer;
    spec.claimMax = 63;
    ChaosCluster c(attackConfig(spec, /*guardian=*/true));
    seedMesh(c);
    c.eq().runUntil(120'000);

    // The ladder passed through throttle on the way to quarantine, and
    // the throttle visibly dropped serves while it was in force.
    EXPECT_GE(c.guardian()->throttles(), 1u);
    EXPECT_EQ(c.guardian()->health(5),
              blitzcoin::TileHealth::Quarantined);
    std::uint64_t throttledDrops = 0;
    for (std::size_t i = 0; i < c.size(); ++i)
        throttledDrops += c.unit(i).throttledDrops();
    EXPECT_GT(throttledDrops, 0u)
        << "throttle escalation never dropped a serve";
    EXPECT_GT(c.byzantinePlan()->stats().lyingStatuses, 0u);
}

TEST(ByzantineGuardian, StuckGreedyHoarderIsQuarantined)
{
    ByzantineSpec spec;
    spec.node = 1;
    spec.behavior = ByzantineBehavior::StuckGreedy;
    ChaosCluster c(attackConfig(spec, /*guardian=*/true));
    const coin::Coins pool = seedMesh(c);
    c.eq().runUntil(120'000);

    EXPECT_EQ(c.guardian()->health(1),
              blitzcoin::TileHealth::Quarantined);
    EXPECT_GT(c.byzantinePlan()->stats().refusedPayouts, 0u);
    // The hoard was fenced and reminted: the honest economy holds the
    // full pool again.
    drain(c);
    c.reconcile();
    EXPECT_EQ(c.totalCoins(), pool);
}

TEST(ByzantineGuardian, StaleReplayerIsQuarantined)
{
    ByzantineSpec spec;
    spec.node = 5;
    spec.behavior = ByzantineBehavior::StaleReplayer;
    spec.period = 256;
    ChaosCluster c(attackConfig(spec, /*guardian=*/true));
    seedMesh(c);
    c.eq().runUntil(120'000);

    const auto st = c.byzantinePlan()->stats();
    EXPECT_GT(st.staleReplays, 0u);
    EXPECT_EQ(c.guardian()->health(5),
              blitzcoin::TileHealth::Quarantined);
    // Every replay bounced off the sequence stamps (no delta was ever
    // re-applied) — the victims only *counted* them.
    std::uint64_t stale = 0;
    for (std::size_t i = 0; i < c.size(); ++i)
        if (i != 5)
            stale += c.unit(i).duplicatesIgnored();
    EXPECT_GT(stale, 0u);
}

TEST(ByzantineGuardian, QuarantineIsStickyAcrossCrashAndRestart)
{
    // A power cycle must not launder a quarantined tile back into the
    // economy: the verdict survives crash() and blocks start().
    ByzantineSpec spec;
    spec.node = 5;
    spec.behavior = ByzantineBehavior::Inflator;
    spec.amount = 8;
    spec.period = 512;
    ChaosConfig cc = attackConfig(spec, /*guardian=*/true);
    cc.fault.outages.push_back({5, 60'000, 70'000, /*freeze=*/false});
    ChaosCluster c(cc);
    const coin::Coins pool = seedMesh(c);

    c.eq().runUntil(50'000);
    ASSERT_EQ(c.guardian()->health(5),
              blitzcoin::TileHealth::Quarantined)
        << "attacker not yet quarantined before its crash window";
    c.eq().runUntil(120'000);
    EXPECT_TRUE(c.unit(5).quarantined());
    EXPECT_EQ(c.guardian()->quarantines(), 1u);
    drain(c);
    c.reconcile();
    EXPECT_EQ(c.totalCoins(), pool);
}

// ----------------------------------------------- false-positive gate

TEST(ByzantineGuardian, HonestMeshUnderBenignFaultsRaisesNoEscalation)
{
    // Drops, a crash window, and a partition — every benign fault the
    // protocol is built to absorb — with the guardian armed: not one
    // warn, throttle, or quarantine may fire. This is the gate that
    // keeps the detector thresholds honest.
    ChaosConfig cc;
    cc.width = 4;
    cc.height = 4;
    cc.seedBase = 77;
    cc.guardianEnabled = true;
    cc.auditPeriod = 4096;
    cc.fault.seed = 424242;
    cc.fault.coinTrafficOnly = true;
    cc.fault.base.drop = 0.05;
    cc.fault.outages.push_back({5, 3'000, 12'000, /*freeze=*/false});
    noc::Topology topo(4, 4, false);
    cc.fault.partitions.push_back(
        fault::columnPartition(topo, 1, 20'000, 32'000));
    ChaosCluster c(cc);
    const coin::Coins pool = seedMesh(c);
    c.eq().runUntil(150'000);

    EXPECT_EQ(c.guardian()->quarantines(), 0u);
    EXPECT_EQ(c.guardian()->throttles(), 0u);
    EXPECT_EQ(c.guardian()->warnings(), 0u);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c.guardian()->health(static_cast<noc::NodeId>(i)),
                  blitzcoin::TileHealth::Healthy)
            << "tile " << i;
    auto report = c.quiesce(65'536);
    (void)report;
    EXPECT_EQ(c.totalCoins(), pool);
}

// ------------------------------------------------ unit-level semantics

TEST(ByzantineUnit, ShunnedNeighborPacketsAreDroppedAtTheDemux)
{
    ChaosConfig cc;
    cc.width = 2;
    cc.height = 2;
    cc.seedBase = 77;
    ChaosCluster c(cc);
    for (std::size_t i = 0; i < 4; ++i)
        c.setMax(i, 8);
    c.setHas(0, 16);
    c.sealProvision();
    // Units 1 and 2 (node 0's mesh neighbors) cut it off before any
    // packet flows; 3 keeps listening.
    c.unit(1).shun(0);
    c.unit(2).shun(0);
    c.startAll();
    c.eq().runUntil(40'000);

    EXPECT_TRUE(c.unit(1).isShunned(0));
    EXPECT_TRUE(c.unit(2).isShunned(0));
    EXPECT_FALSE(c.unit(3).isShunned(0));
    EXPECT_GT(c.unit(1).shunnedDrops() + c.unit(2).shunnedDrops(), 0u)
        << "the shunned tile's packets were never dropped";
    // Node 0 can only reach node 3 via multi-hop XY routing; its
    // direct exchanges with 1 and 2 time out and resolve or abandon,
    // but the economy stays conserved.
    c.eq().runUntil(80'000);
    EXPECT_EQ(c.totalCoins(), 16);
}

TEST(ByzantineUnit, QuarantineFencesCoinsAndBlocksRestart)
{
    ChaosConfig cc;
    cc.width = 2;
    cc.height = 2;
    cc.seedBase = 77;
    ChaosCluster c(cc);
    for (std::size_t i = 0; i < 4; ++i)
        c.setMax(i, 8);
    c.setHas(0, 16);
    c.sealProvision();
    c.startAll();
    c.eq().runUntil(10'000);

    const coin::Coins fenced = c.unit(3).has();
    c.unit(3).quarantine();
    EXPECT_TRUE(c.unit(3).quarantined());
    EXPECT_EQ(c.unit(3).has(), fenced) << "quarantine must fence, not zero";
    // Sticky: a crash/restart cycle cannot bring it back.
    c.unit(3).crash();
    c.unit(3).restart();
    c.unit(3).start();
    EXPECT_TRUE(c.unit(3).quarantined());
    // totalCoins() excludes the fenced counter.
    c.eq().runUntil(20'000);
    EXPECT_LE(c.totalCoins(), 16);
}

// ----------------------------------------------------- determinism

/** Order-free digest of one guardian-vs-attackers trial. */
std::uint64_t
trialDigest(std::uint32_t shards)
{
    ChaosConfig cc;
    cc.width = 6;
    cc.height = 6;
    cc.seedBase = 77;
    cc.shards = shards;
    cc.guardianEnabled = true;
    cc.auditPeriod = 4096;
    ByzantineSpec inflator;
    inflator.node = 18;
    inflator.behavior = ByzantineBehavior::Inflator;
    inflator.amount = 8;
    inflator.period = 512;
    ByzantineSpec spammer;
    spammer.node = 1;
    spammer.behavior = ByzantineBehavior::Spammer;
    ByzantineSpec greedy;
    greedy.node = 2;
    greedy.behavior = ByzantineBehavior::StuckGreedy;
    cc.byzantine.specs = {inflator, spammer, greedy};
    ChaosCluster c(cc);
    seedMesh(c);
    std::optional<sim::Tick> t =
        c.runUntilConverged(2.5, 64, 200'000);

    std::uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 0x100000001b3ull;
        }
    };
    mix(t ? static_cast<std::uint64_t>(*t) : ~std::uint64_t{0});
    mix(c.guardian()->detections());
    mix(c.guardian()->warnings());
    mix(c.guardian()->throttles());
    mix(c.guardian()->quarantines());
    const auto st = c.byzantinePlan()->stats();
    mix(static_cast<std::uint64_t>(st.counterfeited));
    mix(st.pulses);
    mix(st.refusedPayouts);
    mix(st.lyingStatuses);
    for (std::size_t i = 0; i < c.size(); ++i) {
        mix(static_cast<std::uint64_t>(c.unit(i).has()));
        mix(static_cast<std::uint64_t>(
            c.guardian()->health(static_cast<noc::NodeId>(i))));
        mix(c.unit(i).shunnedDrops());
        mix(c.unit(i).throttledDrops());
        mix(c.unit(i).duplicatesIgnored());
    }
    return h;
}

TEST(ByzantineDeterminism, TrialIsBitIdenticalAtEveryShardCount)
{
    const std::uint64_t base = trialDigest(1);
    EXPECT_EQ(trialDigest(2), base);
    EXPECT_EQ(trialDigest(4), base);
    // And re-running the same configuration reproduces it exactly.
    EXPECT_EQ(trialDigest(1), base);
}

// ------------------------------------------------------- acceptance

TEST(ByzantineGuardian, AcceptanceThreeAttackersOn6x6Converge)
{
    // The issue's acceptance scenario: a 6x6 mesh with an inflator, a
    // spammer, and a stuck-greedy hoarder, guardian enabled. All three
    // must be quarantined, the cluster must converge, the budget must
    // land within the leak bound, and every verdict must be journaled.
    ChaosConfig cc;
    cc.width = 6;
    cc.height = 6;
    cc.seedBase = 77;
    cc.guardianEnabled = true;
    cc.auditPeriod = 4096;
    ByzantineSpec inflator;
    inflator.node = 18;
    inflator.behavior = ByzantineBehavior::Inflator;
    inflator.amount = 8;
    inflator.period = 512;
    ByzantineSpec spammer;
    spammer.node = 1;
    spammer.behavior = ByzantineBehavior::Spammer;
    ByzantineSpec greedy;
    greedy.node = 2;
    greedy.behavior = ByzantineBehavior::StuckGreedy;
    cc.byzantine.specs = {inflator, spammer, greedy};
    ChaosCluster c(cc);
    record::FlightRecorder rec;
    record::ProvenanceLedger prov;
    c.attachRecorder(&rec, &prov);
    const coin::Coins pool = seedMesh(c);

    std::optional<sim::Tick> t =
        c.runUntilConverged(2.5, 64, 400'000);
    EXPECT_TRUE(t.has_value())
        << "cluster never converged with the attackers quarantined";

    for (noc::NodeId a : {18, 1, 2})
        EXPECT_EQ(c.guardian()->health(a),
                  blitzcoin::TileHealth::Quarantined)
            << "attacker " << static_cast<int>(a);
    EXPECT_EQ(c.guardian()->quarantines(), 3u);
    const coin::Coins leak = c.guardian()->config().leakBound;
    EXPECT_LE(std::abs(c.totalCoins() - pool), leak);

    // Every detection and escalation is on the flight-recorder log,
    // and the attack actions are journaled alongside them.
    std::size_t guardianRecords = 0, quarantineRecords = 0,
                byzantineRecords = 0;
    for (std::size_t i = 0; i < rec.size(); ++i) {
        const record::Record &r = rec.at(i);
        if (r.kind == record::RecordKind::Guardian) {
            ++guardianRecords;
            if (r.flag == blitzcoin::kGuardianQuarantine)
                ++quarantineRecords;
        } else if (r.kind == record::RecordKind::Byzantine) {
            ++byzantineRecords;
        }
    }
    EXPECT_GE(guardianRecords,
              static_cast<std::size_t>(c.guardian()->detections()));
    EXPECT_EQ(quarantineRecords, 3u);
    EXPECT_GT(byzantineRecords, 0u);

    // Final books: fenced coins reclaimed, pool exactly restored.
    drain(c);
    c.reconcile();
    EXPECT_EQ(c.totalCoins(), pool);
}

} // namespace
