/**
 * @file
 * Tests for the coin-count -> frequency-target LUT.
 */

#include <gtest/gtest.h>

#include "blitzcoin/coin_lut.hpp"

namespace {

using namespace blitz;
using blitzcoin::CoinLut;

coin::CoinScale
scale400()
{
    // 3x3-style domain: largest tile 180 mW at 63 coins.
    return coin::makeScale(120.0, {55.0, 27.5, 180.0}, 6);
}

TEST(CoinLut, Has64Entries)
{
    CoinLut lut(power::catalog::fft(), scale400(), 6);
    EXPECT_EQ(lut.size(), 64u);
}

TEST(CoinLut, MonotoneInCoins)
{
    CoinLut lut(power::catalog::nvdla(), scale400(), 6);
    double prev = -1.0;
    for (coin::Coins c = 0; c < 64; ++c) {
        double f = lut.freqFor(c);
        EXPECT_GE(f, prev) << "coin " << c;
        prev = f;
    }
}

TEST(CoinLut, ZeroAndNegativeCoinsParkTheClock)
{
    CoinLut lut(power::catalog::fft(), scale400(), 6);
    EXPECT_DOUBLE_EQ(lut.freqFor(0), 0.0);
    EXPECT_DOUBLE_EQ(lut.freqFor(-7), 0.0); // transient underflow
}

TEST(CoinLut, SaturatesBeyondTable)
{
    CoinLut lut(power::catalog::fft(), scale400(), 6);
    EXPECT_DOUBLE_EQ(lut.freqFor(100), lut.freqFor(63));
}

TEST(CoinLut, FullScaleCoinsReachFmaxOnLargestTile)
{
    // The scale maps 63 coins to the largest tile's Pmax.
    CoinLut lut(power::catalog::nvdla(), scale400(), 6);
    EXPECT_NEAR(lut.freqFor(63), power::catalog::nvdla().fMax(),
                power::catalog::nvdla().fMax() * 0.02);
}

TEST(CoinLut, SmallTileSaturatesEarly)
{
    // A Viterbi (27.5 mW) hits Fmax with ~10 coins on the 3x3 scale.
    CoinLut lut(power::catalog::viterbi(), scale400(), 6);
    EXPECT_NEAR(lut.freqFor(10), power::catalog::viterbi().fMax(),
                power::catalog::viterbi().fMax() * 0.05);
    EXPECT_DOUBLE_EQ(lut.freqFor(30), lut.freqFor(63));
}

TEST(CoinLut, PowerForNeverExceedsGrant)
{
    CoinLut lut(power::catalog::fft(), scale400(), 6);
    const double mw_per_coin = scale400().mwPerCoin();
    for (coin::Coins c = 1; c < 64; ++c) {
        EXPECT_LE(lut.powerFor(c),
                  static_cast<double>(c) * mw_per_coin + 1e-9)
            << "coin " << c << " over-consumes its grant";
    }
}

TEST(CoinLut, PrecisionScalesEntries)
{
    CoinLut lut4(power::catalog::fft(), scale400(), 4);
    EXPECT_EQ(lut4.size(), 16u);
}

} // namespace
