/**
 * @file
 * Tests for the SoC configuration presets.
 */

#include <gtest/gtest.h>

#include "soc/config.hpp"

namespace {

using namespace blitz;
using soc::SocConfig;
using soc::TileType;

TEST(Config, Av3x3Shape)
{
    SocConfig cfg = soc::make3x3AvSoc();
    EXPECT_EQ(cfg.size(), 9u);
    EXPECT_EQ(cfg.managedAccelerators().size(), 6u); // N=6 in Fig. 17
    EXPECT_NEAR(cfg.totalManagedPMax(), 400.0, 1e-9);
    EXPECT_EQ(cfg.tile(cfg.cpuTile).type, TileType::Cpu);
}

TEST(Config, Vision4x4Shape)
{
    SocConfig cfg = soc::make4x4VisionSoc();
    EXPECT_EQ(cfg.size(), 16u);
    EXPECT_EQ(cfg.managedAccelerators().size(), 13u); // N=13 in Table I
    EXPECT_NEAR(cfg.totalManagedPMax(), 1355.0, 1e-9);
}

TEST(Config, Silicon6x6Shape)
{
    SocConfig cfg = soc::make6x6SiliconSoc();
    EXPECT_EQ(cfg.size(), 36u);
    // 10-tile PM cluster (Section V-D).
    EXPECT_EQ(cfg.managedAccelerators().size(), 10u);
    // The FFT No-PM overhead-baseline tile exists but is unmanaged.
    noc::NodeId nopm = cfg.findTile("FFT-NoPM");
    EXPECT_EQ(cfg.tile(nopm).type, TileType::Accel);
    EXPECT_FALSE(cfg.tile(nopm).pmEnabled);
    // 4 CVA6 cores, 4 memory tiles, 4 scratchpads, 1 IO.
    int cpus = 0, mems = 0, spms = 0, ios = 0;
    for (noc::NodeId i = 0; i < cfg.size(); ++i) {
        switch (cfg.tile(i).type) {
          case TileType::Cpu: ++cpus; break;
          case TileType::Mem: ++mems; break;
          case TileType::Scratchpad: ++spms; break;
          case TileType::Io: ++ios; break;
          default: break;
        }
    }
    EXPECT_EQ(cpus, 4);
    EXPECT_EQ(mems, 4);
    EXPECT_EQ(spms, 4);
    EXPECT_EQ(ios, 1);
}

TEST(Config, SiliconPmClusterComposition)
{
    SocConfig cfg = soc::make6x6SiliconSoc();
    int fft = 0, vit = 0, nvdla = 0;
    for (noc::NodeId id : cfg.managedAccelerators()) {
        const std::string &n = cfg.tile(id).curve->name();
        if (n == "FFT")
            ++fft;
        else if (n == "Viterbi")
            ++vit;
        else if (n == "NVDLA")
            ++nvdla;
    }
    EXPECT_EQ(fft, 3);
    EXPECT_EQ(vit, 6);
    EXPECT_EQ(nvdla, 1);
}

TEST(Config, FindTileByName)
{
    SocConfig cfg = soc::make3x3AvSoc();
    EXPECT_EQ(cfg.tile(cfg.findTile("NVDLA")).curve->name(), "NVDLA");
    EXPECT_THROW(cfg.findTile("nonexistent"), sim::FatalError);
}

TEST(Config, PMaxByNodeZeroForNonAccel)
{
    SocConfig cfg = soc::make3x3AvSoc();
    auto pmax = cfg.pMaxByNode();
    EXPECT_DOUBLE_EQ(pmax[cfg.cpuTile], 0.0);
    EXPECT_GT(pmax[cfg.findTile("NVDLA")], 100.0);
}

TEST(Config, SyntheticSocScales)
{
    SocConfig cfg =
        soc::makeSyntheticSoc(10, power::catalog::fft());
    EXPECT_EQ(cfg.size(), 100u);
    EXPECT_EQ(cfg.managedAccelerators().size(), 99u);
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_THROW(soc::makeSyntheticSoc(1, power::catalog::fft()),
                 sim::FatalError);
}

TEST(Config, ValidateCatchesBrokenConfigs)
{
    SocConfig cfg = soc::make3x3AvSoc();
    cfg.tiles[1].curve = nullptr; // accel without curve
    EXPECT_THROW(cfg.validate(), sim::FatalError);

    SocConfig cfg2 = soc::make3x3AvSoc();
    cfg2.cpuTile = 1; // not a CPU
    EXPECT_THROW(cfg2.validate(), sim::FatalError);

    SocConfig cfg3 = soc::make3x3AvSoc();
    cfg3.tiles.pop_back();
    EXPECT_THROW(cfg3.validate(), sim::FatalError);
}

TEST(Config, TileTypeNames)
{
    EXPECT_STREQ(soc::tileTypeName(TileType::Cpu), "CPU");
    EXPECT_STREQ(soc::tileTypeName(TileType::Accel), "Accel");
    EXPECT_STREQ(soc::tileTypeName(TileType::Scratchpad), "SPM");
}

} // namespace
