/**
 * @file
 * Tests for the CSR block (Fig. 11) and runtime reconfiguration.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blitzcoin/csr.hpp"
#include "coin/neighborhood.hpp"

namespace {

using namespace blitz;
using blitzcoin::BlitzCoinUnit;
using blitzcoin::CsrBlock;
using blitzcoin::CsrReg;
using blitzcoin::UnitConfig;

struct CsrFixture : ::testing::Test
{
    sim::EventQueue eq;
    noc::Topology topo{2, 2, false};
    noc::Network net{eq, topo};
    std::vector<std::unique_ptr<BlitzCoinUnit>> units;
    std::unique_ptr<CsrBlock> csr;

    void
    SetUp() override
    {
        std::vector<bool> managed(4, true);
        auto hoods = coin::managedNeighborhoods(topo, managed);
        for (noc::NodeId id = 0; id < 4; ++id) {
            units.push_back(std::make_unique<BlitzCoinUnit>(
                eq, net, id, UnitConfig{}, hoods[id], 50 + id));
            net.setHandler(id, [this, id](const noc::Packet &pkt) {
                units[id]->handlePacket(pkt);
            });
        }
        csr = std::make_unique<CsrBlock>(*units[0]);
    }
};

TEST_F(CsrFixture, StatusRegistersReflectUnitState)
{
    units[0]->setHas(7);
    units[0]->setMax(20);
    EXPECT_EQ(csr->read(CsrReg::CoinCount), 7);
    EXPECT_EQ(csr->read(CsrReg::CoinTarget), 20);
    EXPECT_EQ(csr->read(CsrReg::ExchangesInit), 0);
    EXPECT_EQ(csr->read(CsrReg::Enable), 0);
}

TEST_F(CsrFixture, StatusRegistersAreReadOnly)
{
    units[0]->setHas(7);
    EXPECT_FALSE(csr->write(CsrReg::CoinCount, 99));
    EXPECT_EQ(units[0]->has(), 7);
    EXPECT_FALSE(csr->write(CsrReg::ExchangesInit, 5));
}

TEST_F(CsrFixture, MaxCoinsWriteProgramsTarget)
{
    EXPECT_TRUE(csr->write(CsrReg::MaxCoins, 42));
    EXPECT_EQ(units[0]->max(), 42);
    EXPECT_FALSE(csr->write(CsrReg::MaxCoins, -1));
}

TEST_F(CsrFixture, ConfigurationRoundTrips)
{
    EXPECT_TRUE(csr->write(CsrReg::RefreshBase, 32));
    EXPECT_EQ(csr->read(CsrReg::RefreshBase), 32);
    EXPECT_TRUE(csr->write(CsrReg::BackoffLambda8, 24)); // lambda = 3
    EXPECT_EQ(csr->read(CsrReg::BackoffLambda8), 24);
    EXPECT_TRUE(csr->write(CsrReg::BackoffK, 4));
    EXPECT_EQ(csr->read(CsrReg::BackoffK), 4);
    EXPECT_TRUE(csr->write(CsrReg::PairingPeriod, 8));
    EXPECT_EQ(csr->read(CsrReg::PairingPeriod), 8);
    EXPECT_TRUE(csr->write(CsrReg::ThermalCap, 12));
    EXPECT_EQ(csr->read(CsrReg::ThermalCap), 12);
}

TEST_F(CsrFixture, InvalidConfigurationRejected)
{
    EXPECT_FALSE(csr->write(CsrReg::RefreshBase, 0));
    EXPECT_FALSE(csr->write(CsrReg::BackoffLambda8, 7)); // lambda < 1
    EXPECT_FALSE(csr->write(CsrReg::PairingPeriod, 1));
    EXPECT_FALSE(csr->write(CsrReg::BackoffK, -3));
    EXPECT_FALSE(csr->write(CsrReg::Enable, 5));
}

TEST_F(CsrFixture, EnableStartsAndStopsExchanges)
{
    units[0]->setHas(16);
    units[0]->setMax(8);
    units[1]->setMax(8);
    units[1]->start();
    EXPECT_TRUE(csr->write(CsrReg::Enable, 1));
    EXPECT_EQ(csr->read(CsrReg::Enable), 1);
    eq.runUntil(2000);
    EXPECT_GT(csr->read(CsrReg::ExchangesInit), 0);
    EXPECT_TRUE(csr->write(CsrReg::Enable, 0));
    auto initiated = csr->read(CsrReg::ExchangesInit);
    eq.runUntil(4000);
    EXPECT_EQ(csr->read(CsrReg::ExchangesInit), initiated);
}

TEST_F(CsrFixture, ThermalCapWriteTakesEffectInProtocol)
{
    // Cap tile 0 at 3 coins via CSR; the exchange must honor it.
    EXPECT_TRUE(csr->write(CsrReg::ThermalCap, 3));
    units[1]->setHas(20);
    for (auto &u : units) {
        u->setMax(10);
        u->start();
    }
    eq.runUntil(20000);
    EXPECT_LE(units[0]->has(), 3);
}

TEST_F(CsrFixture, NegativeThermalCapMeansUncapped)
{
    EXPECT_TRUE(csr->write(CsrReg::ThermalCap, -1));
    EXPECT_EQ(csr->read(CsrReg::ThermalCap), coin::uncapped);
}

TEST_F(CsrFixture, ReconfigureSurvivesLiveTraffic)
{
    for (auto &u : units) {
        u->setMax(16);
        u->setHas(8);
        u->start();
    }
    eq.runUntil(1000);
    // Retune the back-off law mid-flight; protocol must keep running
    // and conserving.
    EXPECT_TRUE(csr->write(CsrReg::RefreshBase, 64));
    EXPECT_TRUE(csr->write(CsrReg::BackoffLambda8, 32));
    eq.runUntil(20000);
    coin::Coins total = 0;
    for (auto &u : units)
        total += u->has();
    EXPECT_EQ(total, 32);
}

TEST_F(CsrFixture, UnmappedAddressReadsZero)
{
    EXPECT_EQ(csr->handleRead(0x7f8), 0);
    EXPECT_FALSE(csr->handleWrite(0x7f8, 1));
}

TEST_F(CsrFixture, PacketStyleHandlersMatchDirectAccess)
{
    units[0]->setHas(9);
    EXPECT_EQ(csr->handleRead(static_cast<std::int64_t>(
                  CsrReg::CoinCount)),
              9);
    EXPECT_TRUE(csr->handleWrite(
        static_cast<std::int64_t>(CsrReg::MaxCoins), 30));
    EXPECT_EQ(units[0]->max(), 30);
}

} // namespace
