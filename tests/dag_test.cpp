/**
 * @file
 * Tests for the workload DAG representation.
 */

#include <gtest/gtest.h>

#include "sim/logging.hpp"
#include "workload/dag.hpp"

namespace {

using namespace blitz;
using workload::Dag;
using workload::TaskId;

Dag
diamond()
{
    // a -> {b, c} -> d
    Dag dag;
    TaskId a = dag.add("a", 0, 100.0);
    TaskId b = dag.add("b", 1, 100.0, {a});
    TaskId c = dag.add("c", 2, 100.0, {a});
    dag.add("d", 3, 100.0, {b, c});
    return dag;
}

TEST(Dag, IdsAreSequential)
{
    Dag dag = diamond();
    EXPECT_EQ(dag.size(), 4u);
    for (TaskId i = 0; i < 4; ++i)
        EXPECT_EQ(dag.task(i).id, i);
}

TEST(Dag, SuccessorsInvertDeps)
{
    Dag dag = diamond();
    EXPECT_EQ(dag.successors(0), (std::vector<TaskId>{1, 2}));
    EXPECT_EQ(dag.successors(1), (std::vector<TaskId>{3}));
    EXPECT_TRUE(dag.successors(3).empty());
}

TEST(Dag, RootsAreDependencyFree)
{
    Dag dag = diamond();
    EXPECT_EQ(dag.roots(), (std::vector<TaskId>{0}));
}

TEST(Dag, TopoOrderRespectsDeps)
{
    Dag dag = diamond();
    auto order = dag.topoOrder();
    ASSERT_EQ(order.size(), 4u);
    std::vector<std::size_t> pos(4);
    for (std::size_t i = 0; i < order.size(); ++i)
        pos[order[i]] = i;
    for (const auto &t : dag.tasks()) {
        for (TaskId d : t.deps)
            EXPECT_LT(pos[d], pos[t.id]);
    }
}

TEST(Dag, ValidatePassesOnDiamond)
{
    EXPECT_NO_THROW(diamond().validate());
}

TEST(Dag, ForwardDependencyRejected)
{
    Dag dag;
    dag.add("a", 0, 1.0);
    EXPECT_THROW(dag.add("b", 1, 1.0, {5}), sim::FatalError);
}

TEST(Dag, SelfDependencyRejected)
{
    Dag dag;
    dag.add("a", 0, 1.0);
    EXPECT_THROW(dag.add("b", 1, 1.0, {1}), sim::FatalError);
}

TEST(Dag, NonPositiveWorkRejected)
{
    Dag dag;
    EXPECT_THROW(dag.add("zero", 0, 0.0), sim::FatalError);
    EXPECT_THROW(dag.add("neg", 0, -5.0), sim::FatalError);
}

TEST(Dag, TotalWorkSums)
{
    Dag dag = diamond();
    EXPECT_DOUBLE_EQ(dag.totalWork(), 400.0);
}

TEST(Dag, IsParallelDetectsShape)
{
    EXPECT_FALSE(diamond().isParallel());
    Dag par;
    par.add("x", 0, 1.0);
    par.add("y", 1, 1.0);
    EXPECT_TRUE(par.isParallel());
}

TEST(Dag, ChainTopoOrder)
{
    Dag dag;
    TaskId prev = dag.add("t0", 0, 1.0);
    for (int i = 1; i < 10; ++i)
        prev = dag.add("t" + std::to_string(i), 0, 1.0, {prev});
    auto order = dag.topoOrder();
    for (TaskId i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

} // namespace
