/**
 * @file
 * Tests for the behavioral coin-exchange engine: convergence,
 * conservation, the Section III-D optimizations, and the deadlock
 * scenarios of Fig. 5.
 */

#include <gtest/gtest.h>

#include "coin/engine.hpp"

namespace {

using namespace blitz;
using coin::EngineConfig;
using coin::ExchangeMode;
using coin::MeshSim;

EngineConfig
baseConfig()
{
    EngineConfig cfg;
    cfg.wrap = true;
    cfg.backoff.enabled = true;
    cfg.pairing.randomPairing = true;
    return cfg;
}

/** Heterogeneous targets + half-demand pool; returns the pool size. */
coin::Coins
seedMesh(MeshSim &sim, int accTypes = 4)
{
    coin::Coins total_max = 0;
    const coin::Coins levels[8] = {8, 16, 32, 63, 10, 24, 40, 50};
    for (std::size_t i = 0; i < sim.ledger().size(); ++i) {
        coin::Coins m =
            levels[i % static_cast<std::size_t>(accTypes)];
        sim.setMax(i, m);
        total_max += m;
    }
    coin::Coins pool = total_max / 2;
    sim.randomizeHas(pool);
    return pool;
}

TEST(Engine, ConvergesOnSmallMesh)
{
    MeshSim sim(noc::Topology::square(4), baseConfig(), 1);
    coin::Coins pool = seedMesh(sim);
    auto r = sim.runUntilConverged(1.0, sim::msToTicks(5.0));
    EXPECT_TRUE(r.converged);
    EXPECT_LT(sim.globalError(), 1.0);
    EXPECT_EQ(sim.ledger().totalHas(), pool);
    EXPECT_GT(r.packets, 0u);
}

/** Parameterized convergence across sizes and modes. */
class ConvergenceSweep
    : public ::testing::TestWithParam<std::tuple<int, ExchangeMode>>
{};

TEST_P(ConvergenceSweep, ConvergesAndConserves)
{
    auto [d, mode] = GetParam();
    EngineConfig cfg = baseConfig();
    cfg.mode = mode;
    MeshSim sim(noc::Topology::square(d), cfg, 17);
    coin::Coins pool = seedMesh(sim);
    auto r = sim.runUntilConverged(1.5, sim::msToTicks(20.0));
    EXPECT_TRUE(r.converged) << "d=" << d;
    EXPECT_EQ(sim.ledger().totalHas(), pool) << "coins leaked";
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndModes, ConvergenceSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8, 10, 14),
                       ::testing::Values(ExchangeMode::OneWay,
                                         ExchangeMode::FourWay)));

TEST(Engine, DeterministicForSameSeed)
{
    auto run = [](std::uint64_t seed) {
        MeshSim sim(noc::Topology::square(6), baseConfig(), seed);
        seedMesh(sim);
        return sim.runUntilConverged(1.0, sim::msToTicks(5.0));
    };
    auto a = run(33);
    auto b = run(33);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.exchanges, b.exchanges);
}

TEST(Engine, DifferentSeedsVary)
{
    auto run = [](std::uint64_t seed) {
        MeshSim sim(noc::Topology::square(6), baseConfig(), seed);
        seedMesh(sim);
        return sim.runUntilConverged(1.0, sim::msToTicks(5.0)).time;
    };
    EXPECT_NE(run(1), run(2));
}

TEST(Engine, ConvergedStateIsIdempotent)
{
    MeshSim sim(noc::Topology::square(4), baseConfig(), 3);
    seedMesh(sim);
    ASSERT_TRUE(sim.runUntilConverged(1.0, sim::msToTicks(5.0))
                    .converged);
    double err = sim.globalError();
    // Keep running: steady state must not drift away.
    sim.runFor(sim::usToTicks(50.0));
    EXPECT_LE(sim.globalError(), err + 1.0);
}

TEST(Engine, ActivityChangeReconverges)
{
    MeshSim sim(noc::Topology::square(4), baseConfig(), 5);
    coin::Coins pool = seedMesh(sim);
    ASSERT_TRUE(sim.runUntilConverged(1.0, sim::msToTicks(5.0))
                    .converged);
    // A tile finishes (max -> 0) and another doubles its demand.
    sim.setMax(0, 0);
    sim.setMax(5, 63);
    auto r = sim.runUntilConverged(1.0, sim::msToTicks(5.0));
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(sim.ledger().totalHas(), pool);
    // The finished tile must have relinquished (close to) everything.
    EXPECT_LE(sim.ledger().has(0), 1);
}

TEST(Engine, FourWayUsesMorePacketsPerExchange)
{
    EngineConfig one = baseConfig();
    one.backoff.enabled = false;
    EngineConfig four = one;
    four.mode = ExchangeMode::FourWay;

    MeshSim s1(noc::Topology::square(6), one, 7);
    MeshSim s4(noc::Topology::square(6), four, 7);
    seedMesh(s1);
    seedMesh(s4);
    auto r1 = s1.runUntilConverged(1.5, sim::msToTicks(10.0));
    auto r4 = s4.runUntilConverged(1.5, sim::msToTicks(10.0));
    ASSERT_TRUE(r1.converged);
    ASSERT_TRUE(r4.converged);
    // 1-way: 2 messages/exchange; 4-way: 12 (Section III-B).
    EXPECT_NEAR(static_cast<double>(r1.packets) /
                    static_cast<double>(r1.exchanges),
                2.0, 0.01);
    EXPECT_GT(static_cast<double>(r4.packets) /
                  static_cast<double>(r4.exchanges),
              10.0);
    // ...but needs fewer exchanges to converge (more info per op).
    EXPECT_LT(r4.exchanges, r1.exchanges);
}

TEST(Engine, CheckerboardDeadlockWithoutRandomPairing)
{
    // Fig. 5 right: an active tile surrounded by inactive tiles, with
    // the coins parked on the far side. Without random pairing the
    // neighbor exchanges all involve max=0 partners holding 0 coins.
    EngineConfig cfg = baseConfig();
    cfg.pairing.randomPairing = false;
    cfg.wrap = false;
    MeshSim sim(noc::Topology::square(3), cfg, 9);
    // Tile 4 (center) is active and penniless; coins sit on corner 0,
    // which is inactive and NOT a neighbor of 4.
    sim.setMax(4, 16);
    sim.setHas(0, 16);
    auto r = sim.runUntilConverged(1.0, sim::usToTicks(200.0));
    EXPECT_FALSE(r.converged) << "deadlock unexpectedly resolved";
    EXPECT_EQ(sim.ledger().has(4), 0);
}

TEST(Engine, RandomPairingBreaksCheckerboardDeadlock)
{
    EngineConfig cfg = baseConfig();
    cfg.pairing.randomPairing = true;
    cfg.pairing.period = 16;
    cfg.wrap = false;
    MeshSim sim(noc::Topology::square(3), cfg, 9);
    sim.setMax(4, 16);
    sim.setHas(0, 16);
    auto r = sim.runUntilConverged(1.0, sim::msToTicks(2.0));
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(sim.ledger().has(4), 16);
}

TEST(Engine, WrapAroundHelpsEdgeTiles)
{
    // Corner-to-corner coin motion is shorter on the torus; both must
    // converge, wrap at least as fast (usually faster).
    EngineConfig mesh = baseConfig();
    mesh.wrap = false;
    EngineConfig torus = baseConfig();
    torus.wrap = true;

    sim::Tick t_mesh = 0, t_torus = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        MeshSim sm(noc::Topology::square(8), mesh, seed);
        MeshSim st(noc::Topology::square(8), torus, seed);
        seedMesh(sm);
        seedMesh(st);
        auto rm = sm.runUntilConverged(1.5, sim::msToTicks(10.0));
        auto rt = st.runUntilConverged(1.5, sim::msToTicks(10.0));
        ASSERT_TRUE(rm.converged);
        ASSERT_TRUE(rt.converged);
        t_mesh += rm.time;
        t_torus += rt.time;
    }
    EXPECT_LE(t_torus, t_mesh * 2);
}

TEST(Engine, DynamicTimingReducesSteadyStateTraffic)
{
    EngineConfig fixed = baseConfig();
    fixed.backoff.enabled = false;
    EngineConfig dynamic = baseConfig();
    dynamic.backoff.enabled = true;

    MeshSim sf(noc::Topology::square(6), fixed, 11);
    MeshSim sd(noc::Topology::square(6), dynamic, 11);
    seedMesh(sf);
    seedMesh(sd);
    ASSERT_TRUE(sf.runUntilConverged(1.0, sim::msToTicks(5.0))
                    .converged);
    ASSERT_TRUE(sd.runUntilConverged(1.0, sim::msToTicks(5.0))
                    .converged);
    // Measure steady-state packet rate after convergence (Fig. 6's
    // motivation: quiet networks once balanced).
    auto pf = sf.runFor(sim::usToTicks(100.0)).packets;
    auto pd = sd.runFor(sim::usToTicks(100.0)).packets;
    EXPECT_LT(pd, pf / 2);
}

TEST(Engine, ThermalCapIsRespectedAtConvergence)
{
    EngineConfig cfg = baseConfig();
    cfg.thermalCaps.assign(16, coin::uncapped);
    cfg.thermalCaps[5] = 4; // hotspot tile
    MeshSim sim(noc::Topology::square(4), cfg, 13);
    for (std::size_t i = 0; i < 16; ++i)
        sim.setMax(i, 32);
    // Caps gate *acceptance*: seed the hotspot tile below its cap and
    // verify the exchange never pushes it over.
    for (std::size_t i = 0; i < 16; ++i)
        sim.setHas(i, i == 5 ? 0 : 13);
    ASSERT_EQ(sim.ledger().totalHas(), 195);
    auto r = sim.runUntilConverged(3.0, sim::msToTicks(10.0));
    EXPECT_TRUE(r.converged);
    EXPECT_LE(sim.ledger().has(5), 4);
    EXPECT_EQ(sim.ledger().totalHas(), 195);
}

TEST(Engine, SqrtScalingTrend)
{
    // The headline claim (Fig. 3): convergence time grows like
    // d = sqrt(N), not like N. Check that growing d 3x grows time by
    // far less than the 9x a linear-in-N scheme would show.
    auto converge = [](int d) {
        double total = 0;
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            EngineConfig cfg;
            cfg.wrap = true;
            cfg.backoff.enabled = false;
            MeshSim sim(noc::Topology::square(d), cfg, seed);
            for (std::size_t i = 0; i < sim.ledger().size(); ++i)
                sim.setMax(i, 16);
            sim.randomizeHas(8 * static_cast<coin::Coins>(d) * d);
            auto r = sim.runUntilConverged(1.5, sim::msToTicks(50.0));
            EXPECT_TRUE(r.converged) << "d=" << d;
            total += static_cast<double>(r.time);
        }
        return total / 5.0;
    };
    double t6 = converge(6);
    double t18 = converge(18);
    // N grows 9x; sqrt scaling predicts ~3x. Allow up to 5x.
    EXPECT_LT(t18, 5.0 * t6);
}

TEST(Engine, RunForCountsWork)
{
    MeshSim sim(noc::Topology::square(4), baseConfig(), 15);
    seedMesh(sim);
    auto r = sim.runFor(sim::usToTicks(10.0));
    EXPECT_FALSE(r.converged); // runFor never claims convergence
    EXPECT_EQ(r.time, sim.now());
    EXPECT_GT(r.exchanges, 0u);
}

TEST(Engine, NeighborhoodCapLimitsHotTileAccumulation)
{
    // Section III-B's sub-group form: a tile never *accepts* coins
    // that would push its 5-tile cross beyond the density cap. (Like
    // the paper's local rule, this gates acceptance only — a cross
    // can still be raised by coins a neighbor accepted for itself.)
    // A center tile with a huge demand would normally accumulate far
    // beyond the cap; verify the cap holds it down.
    auto run = [](coin::Coins nb_cap) {
        EngineConfig cfg = baseConfig();
        cfg.neighborhoodCap = nb_cap;
        MeshSim sim(noc::Topology::square(5), cfg, 31);
        const std::size_t center = 12;
        for (std::size_t i = 0; i < 25; ++i)
            sim.setMax(i, i == center ? 63 : 2);
        // Coins start away from the center region.
        for (std::size_t i : {0u, 4u, 20u, 24u})
            sim.setHas(i, 25);
        sim.runUntilConverged(1.5, sim::msToTicks(10.0));
        EXPECT_EQ(sim.ledger().totalHas(), 100);
        return sim.ledger().has(center);
    };
    coin::Coins uncapped_holding = run(coin::uncapped);
    EXPECT_GT(uncapped_holding, 30); // demand dominates uncapped
    coin::Coins capped_holding = run(20);
    EXPECT_LE(capped_holding, 20); // acceptance gate enforced
}

TEST(Engine, NeighborhoodCapStillConvergesWhenLoose)
{
    EngineConfig cfg = baseConfig();
    cfg.neighborhoodCap = 1000; // never binds
    MeshSim sim(noc::Topology::square(4), cfg, 33);
    coin::Coins pool = seedMesh(sim);
    auto r = sim.runUntilConverged(1.0, sim::msToTicks(5.0));
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(sim.ledger().totalHas(), pool);
}

TEST(Engine, ClusterHasConservesAndConcentrates)
{
    MeshSim sim(noc::Topology::square(8), baseConfig(), 21);
    sim.clusterHas(320);
    EXPECT_EQ(sim.ledger().totalHas(), 320);
    // Coins land on roughly a quarter of the tiles.
    int holders = 0;
    for (std::size_t i = 0; i < 64; ++i)
        holders += sim.ledger().has(i) > 0 ? 1 : 0;
    EXPECT_LT(holders, 32);
    EXPECT_GT(holders, 4);
}

TEST(Engine, ClusteredStartConvergesSlowerThanUniform)
{
    // The long-range-transport effect behind Fig. 3's growth with d.
    auto time_for = [](bool clustered) {
        double total = 0.0;
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            EngineConfig cfg;
            cfg.wrap = true;
            MeshSim sim(noc::Topology::square(12), cfg, seed);
            for (std::size_t i = 0; i < sim.ledger().size(); ++i)
                sim.setMax(i, 16);
            if (clustered) {
                sim.clusterHas(1152);
            } else {
                sim.randomizeHas(1152);
            }
            auto r = sim.runUntilConverged(1.0, sim::msToTicks(20.0));
            EXPECT_TRUE(r.converged);
            total += static_cast<double>(r.time);
        }
        return total;
    };
    EXPECT_GT(time_for(true), 1.5 * time_for(false));
}

TEST(Engine, IsolatedStageMigrationIsFast)
{
    // The 4x4-vision pathology: active tiles whose mesh neighbors are
    // all idle must still rebalance among themselves quickly via the
    // isolation detector + forced far pairing.
    EngineConfig cfg = baseConfig();
    cfg.wrap = false;
    MeshSim sim(noc::Topology::square(4), cfg, 23);
    // Active tiles on a sparse diagonal-ish pattern (no two adjacent,
    // even with wrap): 1, 4, 11, 14.
    for (std::size_t i : {1u, 4u, 11u, 14u})
        sim.setMax(i, 32);
    // All coins start on one of them, grossly unbalanced.
    sim.setHas(1, 64);
    auto r = sim.runUntilConverged(1.0, sim::usToTicks(20.0));
    EXPECT_TRUE(r.converged) << "migration across idle tiles stalled";
    for (std::size_t i : {1u, 4u, 11u, 14u})
        EXPECT_NEAR(static_cast<double>(sim.ledger().has(i)), 16.0,
                    2.0);
}

TEST(Engine, ModeNames)
{
    EXPECT_STREQ(coin::exchangeModeName(ExchangeMode::OneWay), "1-way");
    EXPECT_STREQ(coin::exchangeModeName(ExchangeMode::FourWay),
                 "4-way");
}

} // namespace
