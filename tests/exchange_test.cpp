/**
 * @file
 * Tests for the exchange arithmetic — the heart of BlitzCoin.
 *
 * Includes the two key property tests from the paper's analysis
 * (Section III-E): exchanges conserve coins exactly, and a pairwise
 * exchange never increases the global error.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "coin/exchange.hpp"
#include "sim/rng.hpp"

namespace {

using namespace blitz;
using coin::Coins;
using coin::TileCoins;

// ------------------------------------------------------------ pairwise

TEST(Pairwise, Fig2Example)
{
    // The paper's running example: center tile at ratio 3:8 exchanging
    // with a neighbor. Verify a concrete rebalance: (3,8) vs (9,8):
    // total 12 over max 16 -> both should end at 6.
    TileCoins i{3, 8}, j{9, 8};
    Coins delta = coin::pairwiseDelta(i, j);
    EXPECT_EQ(delta, -3); // 3 coins flow j -> i
    EXPECT_EQ(i.has - delta, 6);
    EXPECT_EQ(j.has + delta, 6);
}

TEST(Pairwise, EqualizesRatios)
{
    TileCoins i{10, 10}, j{0, 30};
    Coins delta = coin::pairwiseDelta(i, j);
    // ratio 10/40 = 0.25 -> i keeps 2.5 -> rounds to 3 (half up),
    // j gets 7 (conservation).
    EXPECT_EQ(delta, 7);
}

TEST(Pairwise, BalancedPairMovesNothing)
{
    TileCoins i{5, 10}, j{15, 30};
    EXPECT_EQ(coin::pairwiseDelta(i, j), 0);
}

TEST(Pairwise, BothInactiveMovesNothing)
{
    TileCoins i{7, 0}, j{3, 0};
    EXPECT_EQ(coin::pairwiseDelta(i, j), 0);
}

TEST(Pairwise, InactiveTileRelinquishesAll)
{
    TileCoins idle{9, 0}, active{1, 20};
    EXPECT_EQ(coin::pairwiseDelta(idle, active), 9);
    // And symmetrically the active initiator collects everything.
    EXPECT_EQ(coin::pairwiseDelta(active, idle), -9);
}

TEST(Pairwise, HandlesTransientNegativeHoldings)
{
    // A stale exchange can leave a tile negative; math must stay
    // conservative and converge it back up.
    TileCoins i{-4, 10}, j{10, 10};
    Coins delta = coin::pairwiseDelta(i, j);
    EXPECT_EQ(i.has - delta, 3);
    EXPECT_EQ(j.has + delta, 3);
}

TEST(Pairwise, ThermalCapLimitsAcceptance)
{
    TileCoins rich{20, 10}, poor{0, 10};
    // Uncapped: poor would get 10.
    EXPECT_EQ(coin::pairwiseDelta(rich, poor), 10);
    // Capped at 4: only 4 flow.
    EXPECT_EQ(coin::pairwiseDelta(rich, poor, coin::uncapped, 4), 4);
}

TEST(Pairwise, CapNeverForcesGiveaway)
{
    // A tile above its cap keeps its holdings; caps only gate inflow.
    TileCoins over{10, 10}, other{10, 10};
    EXPECT_EQ(coin::pairwiseDelta(over, other, 4, coin::uncapped), 0);
}

TEST(Pairwise, CapOnInitiatorLimitsItsInflow)
{
    TileCoins i{0, 10}, j{20, 10};
    EXPECT_EQ(coin::pairwiseDelta(i, j), -10);
    EXPECT_EQ(coin::pairwiseDelta(i, j, 3, coin::uncapped), -3);
}

/** Property harness over random pairwise states. */
class PairwiseProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PairwiseProperty, ConservesAndNeverIncreasesError)
{
    sim::Rng rng(GetParam());
    for (int trial = 0; trial < 2000; ++trial) {
        TileCoins i{rng.range(0, 64), rng.range(0, 64)};
        TileCoins j{rng.range(0, 64), rng.range(0, 64)};
        // A fixed global alpha models the rest of the SoC; any pair
        // exchange must not raise the pair's total error much beyond
        // the 1-coin rounding bound (Section III-E case analysis).
        const double alpha = rng.uniform(0.0, 1.5);
        auto err = [alpha](const TileCoins &t) {
            return std::abs(static_cast<double>(t.has) -
                            alpha * static_cast<double>(t.max));
        };
        const double before = err(i) + err(j);
        const Coins total = i.has + j.has;

        Coins delta = coin::pairwiseDelta(i, j);
        TileCoins i2{i.has - delta, i.max};
        TileCoins j2{j.has + delta, j.max};

        ASSERT_EQ(i2.has + j2.has, total) << "conservation violated";
        // Pair-local alpha equalization: when both are active the new
        // ratios must agree within one coin of each other.
        if (i.max > 0 && j.max > 0) {
            double ri = static_cast<double>(i2.has) /
                        static_cast<double>(i.max);
            double rj = static_cast<double>(j2.has) /
                        static_cast<double>(j.max);
            double pair_alpha =
                static_cast<double>(total) /
                static_cast<double>(i.max + j.max);
            EXPECT_LE(std::abs(ri - pair_alpha),
                      1.0 / static_cast<double>(i.max));
            EXPECT_LE(std::abs(rj - pair_alpha),
                      1.0 / static_cast<double>(j.max));
        }
        // Error measured against the *pair's own* equilibrium never
        // increases beyond rounding (the paper's four-case argument
        // uses the global alpha; rounding adds at most 1 coin).
        const double after = err(i2) + err(j2);
        if (i.max + j.max > 0) {
            double pair_alpha =
                static_cast<double>(total) /
                static_cast<double>(i.max + j.max);
            (void)pair_alpha;
            EXPECT_LE(after, before + 1.0 + 1e-9)
                << "exchange increased error beyond rounding";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairwiseProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

// ----------------------------------------------------------- groupSplit

TEST(GroupSplit, FiveTileFairSplit)
{
    // 4-way exchange: center + 4 neighbors, heterogeneous maxes.
    std::vector<TileCoins> g{{10, 8}, {0, 8}, {6, 16}, {2, 4}, {2, 4}};
    auto out = coin::groupSplit(g);
    Coins total = 0;
    for (const auto &t : g)
        total += t.has;
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), Coins{0}), total);
    // alpha = 20/40 = 0.5: expected 4,4,8,2,2.
    EXPECT_EQ(out, (std::vector<Coins>{4, 4, 8, 2, 2}));
}

TEST(GroupSplit, RemainderGoesToLargestFraction)
{
    // total 10 over maxes {3,3,3}: alpha=10/9, shares 3.33 each ->
    // floors 3,3,3, remainder 1 to the lowest index on a tie.
    std::vector<TileCoins> g{{10, 3}, {0, 3}, {0, 3}};
    auto out = coin::groupSplit(g);
    EXPECT_EQ(out, (std::vector<Coins>{4, 3, 3}));
}

TEST(GroupSplit, AllInactiveKeepsState)
{
    std::vector<TileCoins> g{{5, 0}, {3, 0}};
    auto out = coin::groupSplit(g);
    EXPECT_EQ(out, (std::vector<Coins>{5, 3}));
}

TEST(GroupSplit, InactiveMembersDrained)
{
    std::vector<TileCoins> g{{6, 0}, {0, 12}, {6, 12}};
    auto out = coin::groupSplit(g);
    EXPECT_EQ(out, (std::vector<Coins>{0, 6, 6}));
}

TEST(GroupSplit, CapsFreezeAndRedistribute)
{
    std::vector<TileCoins> g{{20, 10}, {0, 10}, {0, 10}};
    std::vector<Coins> caps{coin::uncapped, 2, coin::uncapped};
    auto out = coin::groupSplit(g, caps);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), Coins{0}), 20);
    EXPECT_LE(out[1], 2);
    // The frozen tile's share spills to the others.
    EXPECT_GT(out[0] + out[2], 13);
}

// Regression: when every active tile freezes at its cap and only
// inactive tiles remain, the residual coins must be parked without
// breaching the parking tiles' own thermal caps.
TEST(GroupSplit, ResidualParkingRespectsCaps)
{
    // Tile 0 is active but capped at 3; tiles 1 and 2 are inactive.
    // Tile 1 is thermally capped at 2, tile 2 is uncapped. The 9
    // residual coins must overflow past tile 1's cap into tile 2.
    std::vector<TileCoins> g{{0, 10}, {1, 0}, {11, 0}};
    std::vector<Coins> caps{3, 2, coin::uncapped};
    auto out = coin::groupSplit(g, caps);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), Coins{0}), 12);
    EXPECT_EQ(out[0], 3);
    EXPECT_LE(out[1], 2) << "capped idle tile ended above its cap";
    EXPECT_EQ(out, (std::vector<Coins>{3, 2, 7}));
}

TEST(GroupSplit, ResidualParkingNeverExceedsAcceptanceLimits)
{
    // The overfull active tile freezes at what it already holds (caps
    // bound acceptance, not retention); the residue lands on the idle
    // tiles without lifting any of them past max(has, cap).
    std::vector<TileCoins> g{{12, 10}, {3, 0}, {0, 0}};
    std::vector<Coins> caps{4, 0, 0};
    auto out = coin::groupSplit(g, caps);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), Coins{0}), 15);
    for (std::size_t k = 0; k < g.size(); ++k)
        EXPECT_LE(out[k], std::max(g[k].has, caps[k]))
            << "tile " << k << " lifted past its acceptance limit";
    EXPECT_EQ(out, (std::vector<Coins>{12, 3, 0}));
}

TEST(GroupSplit, EmptyGroupPanics)
{
    std::vector<TileCoins> g;
    EXPECT_THROW(coin::groupSplit(g), sim::PanicError);
}

/** Property: group splits conserve exactly and equalize within one
 *  coin for random group states. */
class GroupProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(GroupProperty, ConservesAndEqualizes)
{
    sim::Rng rng(GetParam());
    for (int trial = 0; trial < 1000; ++trial) {
        const auto n = static_cast<std::size_t>(rng.range(2, 5));
        std::vector<TileCoins> g;
        Coins total = 0, tmax = 0;
        for (std::size_t k = 0; k < n; ++k) {
            g.push_back(TileCoins{rng.range(0, 63), rng.range(0, 63)});
            total += g.back().has;
            tmax += g.back().max;
        }
        auto out = coin::groupSplit(g);
        ASSERT_EQ(std::accumulate(out.begin(), out.end(), Coins{0}),
                  total);
        if (tmax == 0)
            continue;
        const double alpha = static_cast<double>(total) /
                             static_cast<double>(tmax);
        for (std::size_t k = 0; k < n; ++k) {
            if (g[k].max == 0) {
                EXPECT_EQ(out[k], 0);
            } else {
                EXPECT_LE(std::abs(static_cast<double>(out[k]) -
                                   alpha *
                                       static_cast<double>(g[k].max)),
                          1.0 + 1e-9);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupProperty,
                         ::testing::Values(21u, 34u, 55u, 89u));

/** Property: capped group splits conserve exactly and never push a
 *  tile past its acceptance limit (its cap, or its own holdings when
 *  it already exceeds the cap). */
class CappedGroupProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CappedGroupProperty, ConservesAndRespectsCaps)
{
    sim::Rng rng(GetParam());
    for (int trial = 0; trial < 800; ++trial) {
        const auto n = static_cast<std::size_t>(rng.range(2, 5));
        std::vector<TileCoins> g;
        std::vector<Coins> caps;
        Coins total = 0;
        for (std::size_t k = 0; k < n; ++k) {
            g.push_back(TileCoins{rng.range(0, 40), rng.range(0, 63)});
            total += g.back().has;
            caps.push_back(rng.chance(0.5) ? coin::uncapped
                                           : rng.range(0, 30));
        }
        auto out = coin::groupSplit(g, caps);
        ASSERT_EQ(std::accumulate(out.begin(), out.end(), Coins{0}),
                  total)
            << "trial " << trial;
        for (std::size_t k = 0; k < n; ++k) {
            if (caps[k] == coin::uncapped)
                continue;
            // Acceptance limit: the cap, or pre-existing holdings if
            // the tile was already over it.
            Coins limit = std::max(caps[k], g[k].has);
            EXPECT_LE(out[k], limit)
                << "trial " << trial << " tile " << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CappedGroupProperty,
                         ::testing::Values(7u, 11u, 19u));

} // namespace
