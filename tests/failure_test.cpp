/**
 * @file
 * Failure-injection tests: lost packets, stale exchanges with
 * transient negative coins, and the deadlock scenario at the
 * hardware-unit level.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "blitzcoin/unit.hpp"
#include "coin/neighborhood.hpp"

namespace {

using namespace blitz;
using blitzcoin::BlitzCoinUnit;
using blitzcoin::UnitConfig;

/** Cluster with a packet-dropping demux between network and units. */
struct LossyCluster
{
    sim::EventQueue eq;
    noc::Topology topo;
    noc::Network net;
    std::vector<std::unique_ptr<BlitzCoinUnit>> units;
    sim::Rng dropRng{424242};
    double dropRate = 0.0;
    std::uint64_t dropped = 0;

    explicit LossyCluster(int d, UnitConfig cfg = UnitConfig{})
        : topo(d, d, false), net(eq, topo)
    {
        std::vector<bool> managed(topo.size(), true);
        auto hoods = coin::managedNeighborhoods(topo, managed);
        for (noc::NodeId id = 0; id < topo.size(); ++id) {
            units.push_back(std::make_unique<BlitzCoinUnit>(
                eq, net, id, cfg, hoods[id], 77 + id));
            net.setHandler(id, [this, id](const noc::Packet &pkt) {
                if (dropRng.chance(dropRate)) {
                    ++dropped;
                    return; // packet lost at the tile boundary
                }
                units[id]->handlePacket(pkt);
            });
        }
    }

    coin::Coins
    totalCoins() const
    {
        coin::Coins sum = 0;
        for (const auto &u : units)
            sum += u->has();
        return sum;
    }
};

TEST(Failure, LostUpdateDoesNotWedgeTheInitiator)
{
    // Drop *every* packet: initiators must time out and keep running
    // rather than waiting forever on the missing CoinUpdate.
    LossyCluster c(2);
    c.dropRate = 1.0;
    for (auto &u : c.units) {
        u->setMax(8);
        u->setHas(4);
        u->start();
    }
    c.eq.runUntil(20000);
    for (auto &u : c.units)
        EXPECT_GT(u->exchangesInitiated(), 2u)
            << "unit stopped initiating after a lost exchange";
}

TEST(Failure, ModerateLossStillConverges)
{
    // 10% loss at the tile boundary: the protocol must still converge
    // (dropped CoinStatus aborts the exchange; dropped CoinUpdate is
    // recovered by the timeout path).
    LossyCluster c(3);
    c.dropRate = 0.10;
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.units[i]->setMax(maxes[i]);
    c.units[4]->setHas(95);
    for (auto &u : c.units)
        u->start();
    c.eq.runUntil(200000);
    // Check a roughly proportional distribution was reached.
    double alpha = 95.0 / 200.0;
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_NEAR(static_cast<double>(c.units[i]->has()),
                    alpha * static_cast<double>(maxes[i]), 6.0)
            << "tile " << i;
    }
}

TEST(Failure, DroppedStatusConservesCoins)
{
    // A dropped CoinStatus means no exchange happened at all; a
    // dropped CoinUpdate would lose the delta applied at the partner,
    // so conservation holds only when updates are NOT dropped. This
    // test drops statuses only (the realistic congestion-loss point)
    // and verifies exact conservation.
    LossyCluster c(2);
    // Intercept only CoinStatus: re-wire handlers.
    for (noc::NodeId id = 0; id < c.topo.size(); ++id) {
        c.net.setHandler(id, [&c, id](const noc::Packet &pkt) {
            if (pkt.type == noc::MsgType::CoinStatus &&
                c.dropRng.chance(0.3)) {
                ++c.dropped;
                return;
            }
            c.units[id]->handlePacket(pkt);
        });
    }
    for (auto &u : c.units) {
        u->setMax(8);
        u->setHas(4);
        u->start();
    }
    c.eq.runUntil(100000);
    EXPECT_GT(c.dropped, 0u);
    EXPECT_EQ(c.totalCoins(), 16);
}

TEST(Failure, StaleExchangeCausesOnlyTransientNegatives)
{
    // Force the negative-coin artifact (Section IV-A): a tile serves
    // a status while its own update is in flight, transiently
    // overdrawing the counter. Steady state must be non-negative.
    UnitConfig cfg;
    cfg.backoff.baseInterval = 2; // aggressive overlap
    cfg.backoff.minInterval = 2;
    LossyCluster c(3, cfg);
    sim::Rng rng(7);
    for (auto &u : c.units) {
        u->setMax(rng.range(8, 63));
        u->setHas(rng.range(0, 10));
        u->start();
    }
    bool saw_negative = false;
    for (auto &u : c.units) {
        u->onCoinsChanged = [&saw_negative](coin::Coins has) {
            if (has < 0)
                saw_negative = true;
        };
    }
    const coin::Coins total = c.totalCoins();
    // Churn activity to maximize in-flight overlap.
    for (int round = 0; round < 50; ++round) {
        c.eq.runUntil(c.eq.now() + 200);
        auto i = static_cast<std::size_t>(rng.below(9));
        c.units[i]->setMax(rng.chance(0.4) ? 0 : rng.range(8, 63));
    }
    c.eq.runUntil(c.eq.now() + 50000);
    EXPECT_EQ(c.totalCoins(), total) << "conservation broken";
    for (auto &u : c.units)
        EXPECT_GE(u->has(), 0) << "steady-state negative count";
    // The artifact itself is timing-dependent; do not require it, but
    // record whether the scenario exercised it.
    (void)saw_negative;
}

TEST(Failure, IsolatedActiveTileRescuedByRandomPairing)
{
    // Hardware-level checkerboard (Fig. 5): center tile active, all
    // neighbors idle, coins parked on a far corner.
    UnitConfig cfg;
    cfg.pairing.randomPairing = true;
    cfg.pairing.period = 16;
    LossyCluster c(3, cfg);
    c.units[4]->setMax(16);
    c.units[0]->setHas(16);
    for (auto &u : c.units)
        u->start();
    c.eq.runUntil(sim::usToTicks(100.0));
    EXPECT_EQ(c.units[4]->has(), 16);
    EXPECT_EQ(c.units[0]->has(), 0);
}

TEST(Failure, WithoutRandomPairingIsolationPersists)
{
    UnitConfig cfg;
    cfg.pairing.randomPairing = false;
    LossyCluster c(3, cfg);
    c.units[4]->setMax(16);
    c.units[0]->setHas(16);
    for (auto &u : c.units)
        u->start();
    c.eq.runUntil(sim::usToTicks(100.0));
    // Corner 0 only exchanges with neighbors 1 and 3 (idle, no use
    // for coins)... but they in turn neighbor the center. Mesh
    // diffusion through idle tiles is only possible via random
    // pairing or via idle tiles themselves pushing coins; with plain
    // rotation the idle intermediaries never *accept* coins (max=0
    // on both sides moves nothing), so the center stays starved.
    EXPECT_EQ(c.units[4]->has(), 0);
}

} // namespace
