/**
 * @file
 * Failure-injection tests: lost packets, stale exchanges with
 * transient negative coins, and the deadlock scenario at the
 * hardware-unit level — all driven through the FaultPlane instead of
 * hand-rolled packet-dropping handler wrappers.
 */

#include <gtest/gtest.h>

#include "lossy_cluster.hpp"

namespace {

using namespace blitz;
using blitzcoin::UnitConfig;
using blitz::testing::LossyCluster;
using blitz::testing::lossyConfig;

TEST(Failure, LostUpdateDoesNotWedgeTheInitiator)
{
    // Drop *every* packet: initiators must time out, hand the lost
    // exchange to background reconciliation, and keep initiating
    // rather than waiting forever on the missing CoinUpdate.
    LossyCluster c(2, 1.0);
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        c.unit(i).setMax(8);
        c.unit(i).setHas(4);
    }
    c.startAll();
    c.eq().runUntil(20000);
    EXPECT_GT(c.dropped(), 0u);
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        EXPECT_GT(c.unit(i).exchangesInitiated(), 2u)
            << "unit stopped initiating after a lost exchange";
        EXPECT_GT(c.unit(i).exchangesTimedOut(), 0u);
    }
}

TEST(Failure, ModerateLossStillConverges)
{
    // 10% loss at the tile boundary: the protocol must still converge,
    // and — with the reconciliation protocol — conserve the pool
    // exactly rather than approximately.
    LossyCluster c(3, 0.10);
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.unit(i).setMax(maxes[i]);
    c.unit(4).setHas(95);
    c.c.sealProvision();
    c.startAll();
    c.eq().runUntil(200000);
    // Check a roughly proportional distribution was reached.
    double alpha = 95.0 / 200.0;
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_NEAR(static_cast<double>(c.unit(i).has()),
                    alpha * static_cast<double>(maxes[i]), 6.0)
            << "tile " << i;
    }
    // Drain and audit: the seeded 95 coins must be exactly restored.
    auto report = c.c.quiesce();
    EXPECT_EQ(c.totalCoins(), 95);
    (void)report;
}

TEST(Failure, DroppedStatusConservesCoins)
{
    // A dropped CoinStatus means no exchange happened at all, so
    // conservation must hold without any reconciliation. The
    // per-message fault scope drops statuses only.
    auto cfg = lossyConfig(2, 0.0);
    cfg.fault.messages[static_cast<int>(noc::MsgType::CoinStatus)]
        .drop = 0.3;
    LossyCluster c(cfg);
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        c.unit(i).setMax(8);
        c.unit(i).setHas(4);
    }
    c.startAll();
    c.eq().runUntil(100000);
    EXPECT_GT(c.dropped(), 0u);
    EXPECT_EQ(c.totalCoins(), 16);
}

TEST(Failure, StaleExchangeCausesOnlyTransientNegatives)
{
    // Force the negative-coin artifact (Section IV-A): a tile serves
    // a status while its own update is in flight, transiently
    // overdrawing the counter. Steady state must be non-negative.
    UnitConfig cfg;
    cfg.backoff.baseInterval = 2; // aggressive overlap
    cfg.backoff.minInterval = 2;
    LossyCluster c(3, 0.0, cfg);
    sim::Rng rng(7);
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        c.unit(i).setMax(rng.range(8, 63));
        c.unit(i).setHas(rng.range(0, 10));
    }
    c.startAll();
    bool saw_negative = false;
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        c.unit(i).onCoinsChanged = [&saw_negative](coin::Coins has) {
            if (has < 0)
                saw_negative = true;
        };
    }
    const coin::Coins total = c.totalCoins();
    // Churn activity to maximize in-flight overlap.
    for (int round = 0; round < 50; ++round) {
        c.eq().runUntil(c.eq().now() + 200);
        auto i = static_cast<std::size_t>(rng.below(9));
        c.unit(i).setMax(rng.chance(0.4) ? 0 : rng.range(8, 63));
    }
    c.eq().runUntil(c.eq().now() + 50000);
    EXPECT_EQ(c.totalCoins(), total) << "conservation broken";
    for (std::size_t i = 0; i < c.c.size(); ++i)
        EXPECT_GE(c.unit(i).has(), 0) << "steady-state negative count";
    // The artifact itself is timing-dependent; do not require it, but
    // record whether the scenario exercised it.
    (void)saw_negative;
}

TEST(Failure, IsolatedActiveTileRescuedByRandomPairing)
{
    // Hardware-level checkerboard (Fig. 5): center tile active, all
    // neighbors idle, coins parked on a far corner.
    UnitConfig cfg;
    cfg.pairing.randomPairing = true;
    cfg.pairing.period = 16;
    LossyCluster c(3, 0.0, cfg);
    c.unit(4).setMax(16);
    c.unit(0).setHas(16);
    c.startAll();
    c.eq().runUntil(sim::usToTicks(100.0));
    EXPECT_EQ(c.unit(4).has(), 16);
    EXPECT_EQ(c.unit(0).has(), 0);
}

TEST(Failure, WithoutRandomPairingIsolationPersists)
{
    UnitConfig cfg;
    cfg.pairing.randomPairing = false;
    LossyCluster c(3, 0.0, cfg);
    c.unit(4).setMax(16);
    c.unit(0).setHas(16);
    c.startAll();
    c.eq().runUntil(sim::usToTicks(100.0));
    // Corner 0 only exchanges with neighbors 1 and 3 (idle, no use
    // for coins)... but they in turn neighbor the center. Mesh
    // diffusion through idle tiles is only possible via random
    // pairing or via idle tiles themselves pushing coins; with plain
    // rotation the idle intermediaries never *accept* coins (max=0
    // on both sides moves nothing), so the center stays starved.
    EXPECT_EQ(c.unit(4).has(), 0);
}

} // namespace
