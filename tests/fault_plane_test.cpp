/**
 * @file
 * FaultPlane unit tests: seeded determinism, each injection mechanism
 * (drop/delay/duplicate/corrupt), scope precedence, outage and
 * partition windows — plus the Network::setHandler reentrancy
 * regressions the fault harness depends on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_plane.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace blitz;

noc::Packet
makePacket(noc::NodeId src, noc::NodeId dst,
           noc::MsgType type = noc::MsgType::Generic)
{
    noc::Packet p;
    p.src = src;
    p.dst = dst;
    p.plane = noc::Plane::Service;
    p.type = type;
    return p;
}

/** Drive @p count packets 0 -> 15 across a 4x4 mesh under @p cfg. */
std::uint64_t
deliveredUnder(const fault::FaultConfig &cfg, int count = 200)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    net.setHandler(15, [](const noc::Packet &) {});
    for (int i = 0; i < count; ++i)
        net.send(makePacket(0, 15));
    eq.runUntil();
    return net.packetsDelivered();
}

TEST(FaultPlane, SameSeedSameFaultPattern)
{
    fault::FaultConfig cfg;
    cfg.seed = 99;
    cfg.base.drop = 0.35;
    const auto a = deliveredUnder(cfg);
    const auto b = deliveredUnder(cfg);
    EXPECT_EQ(a, b) << "identical (seed, config) diverged";
    cfg.seed = 100;
    EXPECT_NE(deliveredUnder(cfg), a)
        << "different seeds produced the identical loss pattern "
           "(suspicious for 200 trials at 35%)";
}

TEST(FaultPlane, DropDiscardsEverything)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    fault::FaultConfig cfg;
    cfg.base.drop = 1.0;
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    int got = 0;
    net.setHandler(5, [&](const noc::Packet &) { ++got; });
    for (int i = 0; i < 10; ++i)
        net.send(makePacket(0, 5));
    eq.runUntil();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(net.packetsDropped(), 10u);
    EXPECT_EQ(plane.stats().drops, 10u);
}

TEST(FaultPlane, DelayHoldsDeliveryBack)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    fault::FaultConfig cfg;
    cfg.base.delay = 1.0;
    cfg.base.delayMin = 16;
    cfg.base.delayMax = 16;
    cfg.endpointOnly = true; // one delay, at ejection
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    sim::Tick arrival = 0;
    net.setHandler(3, [&](const noc::Packet &) { arrival = eq.now(); });
    net.send(makePacket(3, 3)); // self-send: 1 ejection cycle baseline
    eq.runUntil();
    EXPECT_EQ(arrival, 17u); // 16 fault delay + 1 ejection cycle
    EXPECT_EQ(plane.stats().delays, 1u);
}

TEST(FaultPlane, DuplicateDeliversTwice)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    fault::FaultConfig cfg;
    cfg.base.duplicate = 1.0;
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    int got = 0;
    net.setHandler(5, [&](const noc::Packet &) { ++got; });
    net.send(makePacket(0, 5));
    eq.runUntil();
    EXPECT_EQ(got, 2);
    // Duplication fires at the delivery stage only — per-hop copies
    // would multiply exponentially with distance.
    EXPECT_EQ(plane.stats().duplicates, 1u);
}

TEST(FaultPlane, CorruptionFlagsThePacket)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    fault::FaultConfig cfg;
    cfg.base.corrupt = 1.0;
    cfg.endpointOnly = true;
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    bool sawCorrupted = false;
    std::int64_t word0 = 0;
    net.setHandler(5, [&](const noc::Packet &p) {
        sawCorrupted = p.corrupted;
        word0 = p.payload[0];
    });
    auto pkt = makePacket(0, 5);
    pkt.payload[0] = 0x5a5a;
    net.send(pkt);
    eq.runUntil();
    EXPECT_TRUE(sawCorrupted) << "CRC flag not set on damaged flit";
    EXPECT_GE(plane.stats().corruptions, 1u);
    // The damage may land in any payload word; when it hits word 0 the
    // value must actually differ.
    if (plane.stats().corruptions == 1u && word0 != 0x5a5a)
        SUCCEED();
}

TEST(FaultPlane, EndpointOnlyAvoidsPerHopCompounding)
{
    // 0 -> 15 is 6 hops + ejection. At 30% loss per stage the per-hop
    // model survives ~0.7^7 = 8% of packets; the endpoint model
    // survives ~70%. The gap is enormous — assert the ordering.
    fault::FaultConfig cfg;
    cfg.seed = 7;
    cfg.base.drop = 0.3;
    cfg.endpointOnly = true;
    const auto endpoint = deliveredUnder(cfg);
    cfg.endpointOnly = false;
    const auto perHop = deliveredUnder(cfg);
    EXPECT_GT(endpoint, 100u);
    EXPECT_LT(perHop, 60u);
}

TEST(FaultPlane, MessageScopeHitsOnlyThatType)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    fault::FaultConfig cfg;
    cfg.messages[static_cast<int>(noc::MsgType::CoinStatus)].drop = 1.0;
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    std::vector<noc::MsgType> got;
    net.setHandler(5,
                   [&](const noc::Packet &p) { got.push_back(p.type); });
    net.send(makePacket(0, 5, noc::MsgType::CoinStatus));
    net.send(makePacket(0, 5, noc::MsgType::CoinUpdate));
    net.send(makePacket(0, 5, noc::MsgType::Generic));
    eq.runUntil();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], noc::MsgType::CoinUpdate);
    EXPECT_EQ(got[1], noc::MsgType::Generic);
}

TEST(FaultPlane, LinkScopeOverridesBase)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 1, false));
    fault::FaultConfig cfg;
    cfg.links[{noc::NodeId{0}, noc::NodeId{1}}].drop = 1.0;
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    int eastbound = 0;
    int westbound = 0;
    net.setHandler(1, [&](const noc::Packet &) { ++eastbound; });
    net.setHandler(2, [&](const noc::Packet &) { ++westbound; });
    net.send(makePacket(0, 1)); // crosses the severed 0 -> 1 hop
    net.send(makePacket(3, 2)); // unaffected direction
    eq.runUntil();
    EXPECT_EQ(eastbound, 0);
    EXPECT_EQ(westbound, 1);
    EXPECT_EQ(plane.stats().drops, 1u);
}

TEST(FaultPlane, CoinTrafficOnlySparesBackgroundTraffic)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    fault::FaultConfig cfg;
    cfg.base.drop = 1.0;
    cfg.coinTrafficOnly = true;
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    std::vector<noc::MsgType> got;
    net.setHandler(5,
                   [&](const noc::Packet &p) { got.push_back(p.type); });
    net.send(makePacket(0, 5, noc::MsgType::CoinStatus));
    net.send(makePacket(0, 5, noc::MsgType::RegWrite));
    eq.runUntil();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], noc::MsgType::RegWrite);
}

TEST(FaultPlane, OutageWindowBlocksTrafficAndFiresCallbacks)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    fault::FaultConfig cfg;
    cfg.outages.push_back({5, 100, 200, /*freeze=*/false});
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    std::vector<noc::NodeId> downs;
    std::vector<noc::NodeId> ups;
    plane.onNodeDown = [&](noc::NodeId n) {
        downs.push_back(n);
        EXPECT_EQ(eq.now(), 100u);
    };
    plane.onNodeUp = [&](noc::NodeId n) {
        ups.push_back(n);
        EXPECT_EQ(eq.now(), 200u);
    };
    plane.armOutageSchedule(eq);
    int got = 0;
    net.setHandler(5, [&](const noc::Packet &) { ++got; });

    EXPECT_FALSE(plane.nodeDown(5, 99));
    EXPECT_TRUE(plane.nodeDown(5, 100));
    EXPECT_TRUE(plane.nodeDown(5, 199));
    EXPECT_FALSE(plane.nodeDown(5, 200));

    eq.schedule(150, [&] { net.send(makePacket(0, 5)); });
    eq.schedule(150, [&] { net.send(makePacket(5, 0)); });
    eq.schedule(250, [&] { net.send(makePacket(0, 5)); });
    eq.runUntil();
    EXPECT_EQ(got, 1); // only the post-recovery packet lands
    EXPECT_EQ(plane.stats().outageDrops, 2u);
    ASSERT_EQ(downs.size(), 1u);
    EXPECT_EQ(downs[0], 5u);
    ASSERT_EQ(ups.size(), 1u);
    EXPECT_EQ(ups[0], 5u);
}

TEST(FaultPlane, FreezeWindowFiresFrozenThawed)
{
    sim::EventQueue eq;
    fault::FaultConfig cfg;
    cfg.outages.push_back({3, 50, 80, /*freeze=*/true});
    fault::FaultPlane plane(cfg);
    int frozen = 0;
    int thawed = 0;
    int crashed = 0;
    plane.onNodeFrozen = [&](noc::NodeId) { ++frozen; };
    plane.onNodeThawed = [&](noc::NodeId) { ++thawed; };
    plane.onNodeDown = [&](noc::NodeId) { ++crashed; };
    plane.armOutageSchedule(eq);
    eq.runUntil();
    EXPECT_EQ(frozen, 1);
    EXPECT_EQ(thawed, 1);
    EXPECT_EQ(crashed, 0) << "freeze misreported as a crash";
}

TEST(FaultPlane, ColumnPartitionCutsCrossTrafficForTheWindow)
{
    sim::EventQueue eq;
    noc::Topology topo(4, 4, false);
    noc::Network net(eq, topo);
    fault::FaultConfig cfg;
    cfg.partitions.push_back(
        fault::columnPartition(topo, /*cutX=*/1, 100, 200));
    fault::FaultPlane plane(cfg);
    plane.attach(net);
    int crossGot = 0;
    int localGot = 0;
    net.setHandler(3, [&](const noc::Packet &) { ++crossGot; });
    net.setHandler(1, [&](const noc::Packet &) { ++localGot; });

    // During the window: traffic crossing columns 1|2 dies on the cut
    // link; traffic inside the left half is untouched.
    eq.schedule(150, [&] { net.send(makePacket(0, 3)); });
    eq.schedule(150, [&] { net.send(makePacket(0, 1)); });
    // After the window the same route works again.
    eq.schedule(250, [&] { net.send(makePacket(0, 3)); });
    eq.runUntil();
    EXPECT_EQ(crossGot, 1);
    EXPECT_EQ(localGot, 1);
    EXPECT_EQ(plane.stats().partitionDrops, 1u);
}

TEST(FaultPlane, RejectsNonProbabilityRates)
{
    fault::FaultConfig cfg;
    cfg.base.drop = 1.5;
    EXPECT_THROW(fault::FaultPlane{cfg}, sim::PanicError);
    cfg.base.drop = 0.0;
    cfg.base.delayMin = 8;
    cfg.base.delayMax = 4;
    EXPECT_THROW(fault::FaultPlane{cfg}, sim::PanicError);
}

// --- Network::setHandler reentrancy regressions -----------------------
//
// The recovery protocol re-registers unit handlers across crash /
// restart cycles while packets are still in flight; these two tests pin
// the delivery semantics that makes that safe.

TEST(FaultPlane, HandlerMaySafelyReplaceItself)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    int firstGot = 0;
    int secondGot = 0;
    net.setHandler(5, [&](const noc::Packet &) {
        ++firstGot;
        // Replacing the executing handler must not destroy the closure
        // mid-invocation (the network copies before invoking).
        net.setHandler(5,
                       [&](const noc::Packet &) { ++secondGot; });
    });
    noc::Packet p;
    p.src = 0;
    p.dst = 5;
    net.send(p);
    net.send(p);
    eq.runUntil();
    EXPECT_EQ(firstGot, 1);
    EXPECT_EQ(secondGot, 1);
}

TEST(FaultPlane, InFlightPacketsLandInTheReplacementHandler)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 4, false));
    int oldGot = 0;
    int newGot = 0;
    net.setHandler(15, [&](const noc::Packet &) { ++oldGot; });
    noc::Packet p;
    p.src = 0;
    p.dst = 15; // 6 hops: in flight for several ticks
    net.send(p);
    eq.schedule(3, [&] {
        net.setHandler(15, [&](const noc::Packet &) { ++newGot; });
    });
    eq.runUntil();
    EXPECT_EQ(oldGot, 0);
    EXPECT_EQ(newGot, 1) << "in-flight packet routed to a stale handler";
}

} // namespace
