/**
 * @file
 * Crash-safe flush tests: FlushGuard must persist *valid* JSON/CSV
 * documents of whatever a tracer/registry captured so far, both from
 * an explicit flushAll() and from the fatal-signal path (exercised in
 * a death-test child so the re-raise semantics are observed too).
 */

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "trace/flush_guard.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace blitz;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Structural sanity for a flushed JSON document: non-empty, starts as
 * an object/array, and every brace/bracket opened outside a string is
 * closed. (trace_plane_test carries the full recursive validator; the
 * flush path reuses the same writers, so balance + landmarks suffice.)
 */
bool
balancedJson(const std::string &s)
{
    if (s.empty() || (s.front() != '{' && s.front() != '['))
        return false;
    int depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (inString) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"')
            inString = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !inString;
}

TEST(FlushGuard, FlushAllWritesValidDocumentsMidCapture)
{
    trace::Tracer t;
    t.complete("test", "half_done", 0, 100, 200, {{"k", "v"}});
    t.instant("test", "mark", 0, 150);

    trace::Registry reg;
    trace::Counter c = reg.counter("events");
    c.add(3);
    reg.sample(1'000);
    c.add(2);
    reg.sample(2'000);

    const std::string jsonPath =
        testing::TempDir() + "flush_guard_trace.json";
    const std::string csvPath =
        testing::TempDir() + "flush_guard_metrics.csv";
    auto g1 = trace::FlushGuard::guardTracer(t, jsonPath);
    auto g2 = trace::FlushGuard::guardMetricsCsv(reg, csvPath);
    ASSERT_TRUE(g1);
    ASSERT_TRUE(g2);

    const std::uint64_t before = trace::FlushGuard::flushCount();
    trace::FlushGuard::flushAll();
    EXPECT_EQ(trace::FlushGuard::flushCount(), before + 1);

    const std::string json = slurp(jsonPath);
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("half_done"), std::string::npos);

    const std::string csv = slurp(csvPath);
    EXPECT_NE(csv.find("tick"), std::string::npos);
    EXPECT_NE(csv.find("events"), std::string::npos);
    // Header plus the two sampled rows.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);

    // A second pass re-runs the current set — still valid documents.
    trace::FlushGuard::flushAll();
    EXPECT_TRUE(balancedJson(slurp(jsonPath)));

    std::remove(jsonPath.c_str());
    std::remove(csvPath.c_str());
}

TEST(FlushGuard, ReleasedRegistrationsNoLongerFlush)
{
    trace::Tracer t;
    t.instant("test", "once", 0, 1);
    const std::string path =
        testing::TempDir() + "flush_guard_released.json";

    auto g = trace::FlushGuard::guardTracer(t, path);
    g.release();
    EXPECT_FALSE(g);
    trace::FlushGuard::flushAll();
    std::ifstream in(path);
    EXPECT_FALSE(in.good()) << "released guard still wrote " << path;

    // Scope exit deregisters too (RAII).
    {
        auto scoped = trace::FlushGuard::guardTracer(t, path);
        ASSERT_TRUE(scoped);
    }
    trace::FlushGuard::flushAll();
    std::ifstream again(path);
    EXPECT_FALSE(again.good()) << "destroyed guard still wrote " << path;
    std::remove(path.c_str());
}

TEST(FlushGuard, MoveTransfersOwnershipOfTheRegistration)
{
    trace::Tracer t;
    t.instant("test", "moved", 0, 1);
    const std::string path =
        testing::TempDir() + "flush_guard_moved.json";

    auto g = trace::FlushGuard::guardTracer(t, path);
    trace::FlushGuard::Registration stolen = std::move(g);
    EXPECT_FALSE(g);
    ASSERT_TRUE(stolen);
    trace::FlushGuard::flushAll();
    EXPECT_TRUE(balancedJson(slurp(path)));
    std::remove(path.c_str());
}

using FlushGuardDeathTest = ::testing::Test;

TEST(FlushGuardDeathTest, FatalSignalFlushesThenDiesWithTheSignal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path =
        testing::TempDir() + "flush_guard_signal.json";
    std::remove(path.c_str());

    EXPECT_EXIT(
        {
            trace::Tracer t;
            t.complete("crash", "in_flight", 0, 10, 20);
            trace::FlushGuard::installSignalHandlers();
            auto g = trace::FlushGuard::guardTracer(t, path);
            std::raise(SIGTERM);
            g.release(); // not reached
        },
        testing::KilledBySignal(SIGTERM), "");

    // The child flushed before re-raising: a complete document of the
    // partial capture survives on disk.
    const std::string json = slurp(path);
    EXPECT_TRUE(balancedJson(json)) << json;
    EXPECT_NE(json.find("in_flight"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
