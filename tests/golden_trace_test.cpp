/**
 * @file
 * Golden-trace pin of the event kernel's observable behavior.
 *
 * These tests freeze the bit-exact outputs of the two benches that
 * exercise the full stack — the Fig. 1 behavioral convergence grid and
 * the chaos fault sweep — as FNV-1a digests. The constants were
 * recorded against the reference kernel (std::function entries in a
 * binary priority_queue, per-hop NoC lambdas) at the seed of PR 3;
 * any scheduler or NoC fast-path rewrite must reproduce them
 * bit-for-bit, at every sweep thread count, or it changed observable
 * semantics rather than just speed.
 *
 * If a future PR changes *intended* behavior (protocol, routing,
 * fault model), re-record the constants with `--regen` (rewrites
 * golden_digests.inc in the source tree) in the same commit and say so
 * in its description; an unexplained digest change is a determinism
 * regression.
 *
 * The observability plane is compiled into every library here but
 * disabled by default (null hook pointers, no sampler events), so the
 * recorded constants double as the "tracing off is free of side
 * effects" pin; the Observed* tests additionally assert that turning
 * tracing and metrics ON leaves the digests bit-identical — observers
 * read state and touch no RNG, so they must never perturb a run.
 */

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "coin/engine.hpp"
#include "fault/chaos.hpp"
#include "record/recorder.hpp"
#include "soc/pm_impl.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "soc/throttler.hpp"
#include "sweep/sweep.hpp"
#include "trace/attach.hpp"
#include "trace/metrics.hpp"
#include "trace/noc_trace.hpp"
#include "trace/prof.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace blitz;

/** FNV-1a over explicitly-fed 64-bit words (doubles by bit pattern). */
class Digest
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xffu;
            h_ *= 0x100000001b3ull;
        }
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

// ------------------------------------------------- fig01 configuration
// Mirrors bench_fig01_scalability.cpp's measureDecentralized() grid.

double
convergeUs(int d, std::uint64_t seed, bool observed = false)
{
    coin::EngineConfig cfg; // paper defaults
    trace::Registry reg;
    coin::MeshSim sim(noc::Topology::square(d), cfg, seed);
    if (observed)
        trace::attachMeshMetrics(sim, reg, /*interval=*/2048);
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < sim.ledger().size(); ++i) {
        coin::Coins m = 8 << (i % 3);
        sim.setMax(i, m);
        demand += m;
    }
    sim.clusterHas(demand / 2);
    auto r = sim.runUntilConverged(1.0, sim::msToTicks(20.0));
    return r.converged ? sim::ticksToUs(r.time) : -1.0;
}

std::uint64_t
fig01Digest(std::size_t threads)
{
    constexpr std::array<int, 3> ds{4, 6, 8};
    constexpr std::size_t seedsPerPoint = 20;
    sweep::SweepOptions opts;
    opts.threads = threads;
    auto times = sweep::runSweep(
        ds.size() * seedsPerPoint, /*rootSeed=*/1,
        [&](std::size_t i, std::uint64_t seed) {
            return convergeUs(ds[i / seedsPerPoint], seed);
        },
        opts);
    Digest dg;
    for (double t : times)
        dg.f64(t);
    return dg.value();
}

// ------------------------------------------------- chaos configuration
// A representative subset of bench_chaos.cpp's scenario matrix (rates,
// duplication+corruption, crash windows, a timed partition, both mesh
// sizes) with the bench's exact per-trial construction.

struct GoldenScenario
{
    int d;
    double drop;
    double duplicate;
    double corrupt;
    bool crash;
    bool partition;
};

constexpr GoldenScenario kScenarios[] = {
    {4, 0.00, 0.00, 0.00, false, false},
    {4, 0.05, 0.00, 0.00, false, false},
    {4, 0.05, 0.02, 0.02, false, false},
    {4, 0.05, 0.00, 0.00, true, false},
    {4, 0.02, 0.00, 0.00, false, true},
    {6, 0.02, 0.00, 0.00, false, false},
    {6, 0.02, 0.00, 0.00, false, true},
};

constexpr sim::Tick faultQuietTick = 12'000;
constexpr sim::Tick deadline = 400'000;
constexpr double convergedTol = 2.5;

std::uint64_t
chaosTrialDigest(const GoldenScenario &sc, std::uint64_t seed,
                 bool observed = false,
                 record::FlightRecorder *rec = nullptr,
                 std::uint32_t shards = 0, bool profiled = false)
{
    fault::ChaosConfig cc;
    cc.width = sc.d;
    cc.height = sc.d;
    cc.shards = shards;
    // Exercise the arena-backed slab path under the determinism pin
    // (backing store must never affect results).
    cc.arena = &sim::threadArena();
    cc.seedBase = seed;
    cc.fault.seed = seed;
    cc.fault.coinTrafficOnly = true;
    cc.fault.base.drop = sc.drop;
    cc.fault.base.duplicate = sc.duplicate;
    cc.fault.base.corrupt = sc.corrupt;
    const auto n = static_cast<std::size_t>(sc.d * sc.d);
    if (sc.crash) {
        cc.fault.outages.push_back(
            {static_cast<noc::NodeId>(n / 2), 3'000, faultQuietTick,
             false});
        cc.fault.outages.push_back(
            {static_cast<noc::NodeId>(1), 5'000, faultQuietTick, false});
        cc.auditPeriod = 4'096;
    }
    if (sc.partition) {
        noc::Topology topo(sc.d, sc.d, false);
        cc.fault.partitions.push_back(fault::columnPartition(
            topo, sc.d / 2 - 1, 2'000, faultQuietTick));
        cc.auditPeriod = 4'096;
    }

    fault::ChaosCluster cluster(cc);
    // Observers attach before any event runs; they read state only, so
    // the digest below must not move.
    trace::Tracer tracer;
    trace::Registry reg;
    trace::NocTrace nocProbe(reg, cluster.net().linkCount(),
                             /*hopLatency=*/1);
    if (observed) {
        cluster.attachTrace(&tracer);
        cluster.attachMetrics(&reg, /*interval=*/1024);
        cluster.net().setTrace(&nocProbe);
    }
    if (rec)
        cluster.attachRecorder(rec);
    // The superstep profiler reads clocks and bumps its own counters
    // only; attaching it must leave the digest untouched (wall-clock
    // never feeds back into simulation).
    trace::SuperstepProfiler prof;
    if (profiled && cluster.shardGroup())
        prof.attach(*cluster.shardGroup());
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < n; ++i) {
        coin::Coins m = bench::typeLevel(static_cast<int>(i) % 4);
        cluster.setMax(i, m);
        demand += m;
    }
    const coin::Coins pool = demand / 2;
    const std::size_t quarter = std::max<std::size_t>(n / 4, 1);
    for (std::size_t i = 0; i < quarter; ++i) {
        coin::Coins share = pool / static_cast<coin::Coins>(quarter);
        if (i < static_cast<std::size_t>(
                    pool % static_cast<coin::Coins>(quarter)))
            ++share;
        cluster.setHas(i, share);
    }
    cluster.sealProvision();
    cluster.startAll();

    const sim::Tick quiet =
        (sc.crash || sc.partition) ? faultQuietTick : 0;
    if (quiet > 0)
        cluster.eq().runUntil(quiet);
    std::optional<sim::Tick> t =
        cluster.runUntilConverged(convergedTol, 64, deadline);

    Digest dg;
    dg.u64(t ? *t : ~std::uint64_t{0});
    auto report = cluster.quiesce(65'536);
    dg.i64(report.gap);
    dg.i64(report.counted);
    dg.u64(report.crashedUnits);
    dg.u64(cluster.eq().now());
    const auto &net = cluster.net();
    dg.u64(net.packetsSent());
    dg.u64(net.packetsDelivered());
    dg.u64(net.packetsDropped());
    dg.u64(net.totalHops());
    if (shards >= 1) {
        // Sharded runs pin the exact integer latency aggregates; the
        // Welford summary's fold order is partition-dependent and
        // asserts if read.
        dg.u64(net.latencyCount());
        dg.u64(net.latencySumTicks());
        dg.u64(net.latencyMaxTicks());
    } else {
        dg.u64(net.latency().count());
        dg.f64(net.latency().mean());
        dg.f64(net.latency().max());
    }
    const auto fs = cluster.plane().stats();
    dg.u64(fs.drops);
    dg.u64(fs.delays);
    dg.u64(fs.duplicates);
    dg.u64(fs.corruptions);
    dg.u64(fs.outageDrops);
    dg.u64(fs.partitionDrops);
    for (std::size_t i = 0; i < n; ++i) {
        dg.i64(cluster.unit(i).has());
        dg.u64(cluster.unit(i).updatesRecovered());
        dg.u64(cluster.unit(i).exchangesAbandoned());
        dg.u64(cluster.unit(i).duplicatesIgnored());
    }
    return dg.value();
}

std::uint64_t
chaosDigest(std::size_t threads)
{
    Digest all;
    std::uint64_t scenarioIdx = 0;
    for (const GoldenScenario &sc : kScenarios) {
        sweep::SweepOptions opts;
        opts.threads = threads;
        auto trials = sweep::runSweep(
            /*trials=*/4, sweep::streamSeed(2026, scenarioIdx++),
            [&sc](std::size_t, std::uint64_t seed) {
                return chaosTrialDigest(sc, seed);
            },
            opts);
        for (std::uint64_t d : trials)
            all.u64(d);
    }
    return all.value();
}

/**
 * Sharded pin: the same scenario matrix on the BSP shard kernel.
 * Keyed fault streams and per-source sequence numbers make this a
 * *different* (equally valid) fault pattern than the legacy pin, so
 * it gets its own constant — what it freezes is that shard counts
 * 1, 2 and 4 reproduce it bit-for-bit.
 */
std::uint64_t
shardedChaosDigest(std::uint32_t shards, bool profiled = false)
{
    Digest all;
    std::uint64_t scenarioIdx = 0;
    for (const GoldenScenario &sc : kScenarios) {
        for (std::uint64_t rep = 0; rep < 2; ++rep)
            all.u64(chaosTrialDigest(
                sc, sweep::streamSeed(2033, scenarioIdx * 16 + rep),
                /*observed=*/false, /*rec=*/nullptr, shards, profiled));
        ++scenarioIdx;
    }
    return all.value();
}

// --------------------------------------------- byzantine configuration
// Guardian-armed trials under the canned attacker roster of
// bench_byzantine.cpp (Inflator@18, Spammer@1, StuckGreedy@2). The pin
// covers attack injection, the shadow-accounting sweeps, the
// escalation ladder (including amnesty), quarantine shunning, and the
// remint reclaim — the whole robustness plane must be bit-identical at
// every sweep thread count and every shard count.

std::uint64_t
byzantineTrialDigest(int attackers, std::uint64_t seed,
                     std::uint32_t shards = 0, bool profiled = false)
{
    fault::ChaosConfig cc;
    cc.width = 6;
    cc.height = 6;
    cc.shards = shards;
    cc.arena = &sim::threadArena();
    cc.seedBase = seed;
    cc.fault.seed = seed;
    cc.byzantine.seed = seed;
    cc.guardianEnabled = true;
    cc.auditPeriod = 4'096;
    {
        using fault::ByzantineBehavior;
        fault::ByzantineSpec inflator;
        inflator.node = 18;
        inflator.behavior = ByzantineBehavior::Inflator;
        inflator.amount = 8;
        inflator.period = 512;
        fault::ByzantineSpec spammer;
        spammer.node = 1;
        spammer.behavior = ByzantineBehavior::Spammer;
        fault::ByzantineSpec greedy;
        greedy.node = 2;
        greedy.behavior = ByzantineBehavior::StuckGreedy;
        const fault::ByzantineSpec roster[] = {inflator, spammer,
                                               greedy};
        for (int i = 0; i < attackers; ++i)
            cc.byzantine.specs.push_back(roster[i]);
    }

    fault::ChaosCluster cluster(cc);
    trace::SuperstepProfiler prof;
    if (profiled && cluster.shardGroup())
        prof.attach(*cluster.shardGroup());
    const auto n = static_cast<std::size_t>(cc.width * cc.height);
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < n; ++i) {
        coin::Coins m = bench::typeLevel(static_cast<int>(i) % 4);
        cluster.setMax(i, m);
        demand += m;
    }
    const coin::Coins pool = demand / 2;
    const std::size_t quarter = std::max<std::size_t>(n / 4, 1);
    for (std::size_t i = 0; i < quarter; ++i) {
        coin::Coins share = pool / static_cast<coin::Coins>(quarter);
        if (i < static_cast<std::size_t>(
                    pool % static_cast<coin::Coins>(quarter)))
            ++share;
        cluster.setHas(i, share);
    }
    cluster.sealProvision();
    cluster.startAll();

    std::optional<sim::Tick> t =
        cluster.runUntilConverged(convergedTol, 64, deadline);

    Digest dg;
    dg.u64(t ? *t : ~std::uint64_t{0});
    for (std::size_t i = 0; i < n; ++i)
        cluster.unit(i).stop();
    cluster.eq().runUntil(cluster.eq().now() + 20'000);
    cluster.reconcile();

    const auto *g = cluster.guardian();
    dg.u64(g->sweepsRun());
    dg.u64(g->detections());
    dg.u64(g->warnings());
    dg.u64(g->throttles());
    dg.u64(g->quarantines());
    if (const auto *bp = cluster.byzantinePlan()) {
        const auto bs = bp->stats();
        dg.i64(bs.counterfeited);
        dg.u64(bs.pulses);
        dg.u64(bs.forgedReplies);
        dg.u64(bs.refusedPayouts);
        dg.u64(bs.staleReplays);
        dg.u64(bs.lyingStatuses);
    }
    dg.i64(cluster.audit().coinsMinted());
    dg.i64(cluster.audit().coinsBurned());
    dg.i64(cluster.totalCoins() - pool);
    dg.u64(cluster.eq().now());
    const auto &net = cluster.net();
    dg.u64(net.packetsSent());
    dg.u64(net.packetsDelivered());
    dg.u64(net.packetsDropped());
    dg.u64(net.totalHops());
    if (shards >= 1) {
        dg.u64(net.latencyCount());
        dg.u64(net.latencySumTicks());
        dg.u64(net.latencyMaxTicks());
    } else {
        dg.u64(net.latency().count());
        dg.f64(net.latency().mean());
        dg.f64(net.latency().max());
    }
    for (std::size_t i = 0; i < n; ++i) {
        const auto id = static_cast<noc::NodeId>(i);
        dg.i64(cluster.unit(i).has());
        dg.u64(static_cast<std::uint64_t>(g->health(id)));
        dg.i64(g->strikes(id));
        dg.u64(cluster.unit(i).shunnedDrops());
        dg.u64(cluster.unit(i).throttledDrops());
        dg.u64(cluster.unit(i).duplicatesIgnored());
    }
    return dg.value();
}

std::uint64_t
byzantineDigest(std::size_t threads)
{
    Digest all;
    std::uint64_t scenarioIdx = 0;
    for (int attackers : {1, 3}) {
        sweep::SweepOptions opts;
        opts.threads = threads;
        auto trials = sweep::runSweep(
            /*trials=*/2, sweep::streamSeed(2040, scenarioIdx++),
            [attackers](std::size_t, std::uint64_t seed) {
                return byzantineTrialDigest(attackers, seed);
            },
            opts);
        for (std::uint64_t d : trials)
            all.u64(d);
    }
    return all.value();
}

/** Sharded byzantine pin; same caveat as shardedChaosDigest. */
std::uint64_t
shardedByzantineDigest(std::uint32_t shards, bool profiled = false)
{
    Digest all;
    std::uint64_t scenarioIdx = 0;
    for (int attackers : {1, 3}) {
        for (std::uint64_t rep = 0; rep < 2; ++rep)
            all.u64(byzantineTrialDigest(
                attackers,
                sweep::streamSeed(2047, scenarioIdx * 16 + rep),
                shards, profiled));
        ++scenarioIdx;
    }
    return all.value();
}

// ----------------------------------------------- thermal configuration
// Physics-plane pin: a 4x4 vision SoC under the full limiter ladder —
// fast-tau thermal trips, an undersized shared rail that droops the
// supplies at the latch, and a board TDP just below the budget. The
// constant freezes the coupled closed loop (power -> RC junctions ->
// arbiter -> tile caps -> BlitzCoin reflow) at every sweep thread
// count and every shard count; the observer/detached pair additionally
// pins that a non-enforcing plane is invisible to the run.

enum PhysicsMode
{
    kDetachedPhysics,  ///< no plane attached
    kObserverPhysics,  ///< attached, enforce = false (integrate only)
    kEnforcingPhysics, ///< attached, full limiter ladder active
};

/** Out-params for the non-vacuity check on the pinned scenario. */
struct ThermalProbe
{
    std::uint64_t engages = 0;
    std::uint64_t releases = 0;
    double peakTempC = 0.0;
};

soc::PhysicsConfig
goldenPhysicsConfig()
{
    soc::PhysicsConfig phys;
    phys.thermal.node.cJPerC = 1e-6; // tau = 300 us
    phys.trip.tripC = 52.0;
    phys.trip.releaseC = 50.0;
    phys.trip.capFraction = 0.5;
    phys.neighborCouplingWPerC = 1e-3;
    soc::RailSpec spec; // ~530 mA demand at the 450 mW budget
    spec.rail.vNominal = 0.85;
    spec.rail.limitMa = 450.0;
    spec.rail.releaseFraction = 0.8;
    spec.capFraction = 0.6;
    spec.droopV = 0.02;
    phys.rails.push_back(spec);
    phys.board.limitMw = 430.0;
    phys.board.capFraction = 0.7;
    return phys;
}

std::uint64_t
thermalTrialDigest(std::uint64_t seed, std::uint32_t shards = 0,
                   PhysicsMode mode = kEnforcingPhysics,
                   ThermalProbe *probe = nullptr, bool profiled = false)
{
    soc::SocConfig cfg = soc::make4x4VisionSoc();
    cfg.shards = shards;
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.budgetMw = soc::budgets::vision33Percent;
    soc::Soc s(cfg, pm, seed);

    trace::SuperstepProfiler prof;
    if (profiled && s.shardGroup())
        prof.attach(*s.shardGroup());

    soc::PhysicsConfig phys = goldenPhysicsConfig();
    phys.enforce = mode == kEnforcingPhysics;
    soc::PhysicsPlane plane(phys);
    if (mode != kDetachedPhysics)
        s.attachPhysics(plane);

    auto st = s.run(soc::visionDependent(s.config(), 2));

    Digest dg;
    dg.u64(st.completed ? 1 : 0);
    dg.u64(st.execTime);
    dg.u64(st.nocPackets);
    dg.u64(st.responseTicks.count());
    dg.f64(st.responseTicks.mean());
    dg.f64(st.responseTicks.max());
    // NOT totalExecuted(): the plane's sampler events are themselves
    // counted there, so an attached observer would trivially differ.
    dg.u64(s.eventQueue().now());
    const auto &net = s.network();
    dg.u64(net.packetsSent());
    dg.u64(net.packetsDelivered());
    dg.u64(net.totalHops());
    dg.f64(s.totalAccelPowerMw());
    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    dg.i64(bc.clusterCoins());
    dg.f64(bc.clusterError());
    if (mode == kEnforcingPhysics) {
        // The plane's own observables join the pin only when it acts
        // on the run, so the detached/observer digests stay comparable
        // to each other.
        dg.u64(plane.steps());
        dg.f64(plane.peakTempC());
        dg.u64(plane.boardEngaged() ? 1 : 0);
        const auto &arb = plane.arbiter();
        dg.u64(arb.engages());
        dg.u64(arb.releases());
        dg.u64(arb.updates());
        dg.u64(arb.throttledCount());
        const auto &th = plane.thermal();
        for (std::size_t i = 0; i < th.size(); ++i)
            dg.f64(th.temperatureC(i));
        const auto &rails = plane.rails();
        for (std::size_t r = 0; r < rails.size(); ++r) {
            dg.f64(rails.peakMa(r));
            dg.u64(rails.engageCount(r));
        }
    }
    if (probe) {
        probe->engages = plane.arbiter().engages();
        probe->releases = plane.arbiter().releases();
        probe->peakTempC = plane.peakTempC();
    }
    return dg.value();
}

std::uint64_t
thermalDigest(std::size_t threads)
{
    sweep::SweepOptions opts;
    opts.threads = threads;
    auto trials = sweep::runSweep(
        /*trials=*/3, sweep::streamSeed(2054, 0),
        [](std::size_t, std::uint64_t seed) {
            return thermalTrialDigest(seed);
        },
        opts);
    Digest all;
    for (std::uint64_t d : trials)
        all.u64(d);
    return all.value();
}

/** Sharded thermal pin; same caveat as shardedChaosDigest. */
std::uint64_t
shardedThermalDigest(std::uint32_t shards, bool profiled = false)
{
    Digest all;
    for (std::uint64_t rep = 0; rep < 2; ++rep)
        all.u64(thermalTrialDigest(sweep::streamSeed(2061, rep), shards,
                                   kEnforcingPhysics, nullptr, profiled));
    return all.value();
}

// Recorded against the reference kernel; see the file comment.
#include "golden_digests.inc"

TEST(GoldenTrace, Fig01GridMatchesRecordedDigest)
{
    for (std::size_t threads : {1u, 2u, 4u})
        EXPECT_EQ(fig01Digest(threads), kGoldenFig01)
            << "threads=" << threads;
}

TEST(GoldenTrace, ChaosTrialsMatchRecordedDigest)
{
    for (std::size_t threads : {1u, 2u, 4u})
        EXPECT_EQ(chaosDigest(threads), kGoldenChaos)
            << "threads=" << threads;
}

TEST(GoldenTrace, ShardedChaosTrialsMatchRecordedDigestAtEveryShardCount)
{
    for (std::uint32_t shards : {1u, 2u, 4u})
        EXPECT_EQ(shardedChaosDigest(shards), kGoldenChaosSharded)
            << "shards=" << shards;
}

TEST(GoldenTrace, ByzantineTrialsMatchRecordedDigest)
{
    for (std::size_t threads : {1u, 2u, 4u})
        EXPECT_EQ(byzantineDigest(threads), kGoldenByzantine)
            << "threads=" << threads;
}

TEST(GoldenTrace, ShardedByzantineTrialsMatchRecordedDigestAtEveryShardCount)
{
    for (std::uint32_t shards : {1u, 2u, 4u})
        EXPECT_EQ(shardedByzantineDigest(shards), kGoldenByzantineSharded)
            << "shards=" << shards;
}

TEST(GoldenTrace, ThermalTrialsMatchRecordedDigest)
{
    for (std::size_t threads : {1u, 2u, 4u})
        EXPECT_EQ(thermalDigest(threads), kGoldenThermal)
            << "threads=" << threads;
}

TEST(GoldenTrace, ShardedThermalTrialsMatchRecordedDigestAtEveryShardCount)
{
    for (std::uint32_t shards : {1u, 2u, 4u})
        EXPECT_EQ(shardedThermalDigest(shards), kGoldenThermalSharded)
            << "shards=" << shards;
}

// The introspection plane is an observer: attaching a SuperstepProfiler
// must reproduce the *same* pinned constants as the detached runs, at
// every shard count. Any drift here means wall-clock measurement leaked
// into simulation outcomes.

TEST(GoldenTrace, ProfiledShardedChaosMatchesDetachedPinAtEveryShardCount)
{
    for (std::uint32_t shards : {1u, 2u, 4u})
        EXPECT_EQ(shardedChaosDigest(shards, /*profiled=*/true),
                  kGoldenChaosSharded)
            << "shards=" << shards;
}

TEST(GoldenTrace, ProfiledShardedByzantineMatchesDetachedPinAtEveryShardCount)
{
    for (std::uint32_t shards : {1u, 2u, 4u})
        EXPECT_EQ(shardedByzantineDigest(shards, /*profiled=*/true),
                  kGoldenByzantineSharded)
            << "shards=" << shards;
}

TEST(GoldenTrace, ProfiledShardedThermalMatchesDetachedPinAtEveryShardCount)
{
    for (std::uint32_t shards : {1u, 2u, 4u})
        EXPECT_EQ(shardedThermalDigest(shards, /*profiled=*/true),
                  kGoldenThermalSharded)
            << "shards=" << shards;
}

TEST(GoldenTrace, ProfiledShardedSweepBitIdenticalAcrossThreadCounts)
{
    // Thread axis with the profiler attached: each trial is a sharded
    // thermal run with its own profiler, dispatched through runSweep at
    // 1, 2 and 4 sweep threads. No pin — the contract is that the three
    // thread counts agree bit-for-bit even while every worker is timing
    // itself.
    auto sweepDigest = [](std::size_t threads) {
        sweep::SweepOptions opts;
        opts.threads = threads;
        auto trials = sweep::runSweep(
            /*trials=*/3, sweep::streamSeed(2068, 0),
            [](std::size_t, std::uint64_t seed) {
                return thermalTrialDigest(seed, /*shards=*/2,
                                          kEnforcingPhysics, nullptr,
                                          /*profiled=*/true);
            },
            opts);
        Digest all;
        for (std::uint64_t d : trials)
            all.u64(d);
        return all.value();
    };
    const std::uint64_t base = sweepDigest(1);
    for (std::size_t threads : {2u, 4u})
        EXPECT_EQ(sweepDigest(threads), base) << "threads=" << threads;
}

TEST(GoldenTrace, ThermalGoldenScenarioActuallyThrottles)
{
    // Non-vacuity guard on the pins above: the first pinned trial must
    // really heat into the trip band and cycle the limiter ladder —
    // otherwise the thermal constant would silently degenerate into a
    // plain SoC-run pin. The seed reproduces runSweep's derivation for
    // trial 0 of thermalDigest().
    ThermalProbe probe;
    thermalTrialDigest(sweep::streamSeed(sweep::streamSeed(2054, 0), 0),
                       /*shards=*/0, kEnforcingPhysics, &probe);
    EXPECT_GT(probe.engages, 0u);
    EXPECT_GT(probe.releases, 0u);
    EXPECT_GT(probe.peakTempC, 52.0);
}

TEST(GoldenTrace, DetachedPhysicsMatchesUnenforcedAttachedDigests)
{
    // Compiled-in-but-detached must cost nothing observable, and an
    // attached plane in observer mode (enforce = false) integrates its
    // models without perturbing the run: both digests are bit-equal.
    for (std::uint64_t seed : {3u, 11u})
        EXPECT_EQ(thermalTrialDigest(seed, 0, kDetachedPhysics),
                  thermalTrialDigest(seed, 0, kObserverPhysics))
            << "seed=" << seed;
}

TEST(GoldenTrace, SampledFig01TrialMatchesUnsampledResult)
{
    // Metrics sampling reads ledger state at cadence boundaries inside
    // the engine's run loop; the trial outcome must be bit-identical.
    EXPECT_EQ(convergeUs(6, 42, /*observed=*/true),
              convergeUs(6, 42, /*observed=*/false));
}

TEST(GoldenTrace, ObservedChaosTrialsMatchUnobservedDigests)
{
    // Full observability on (tracer spans, NoC probe, periodic metric
    // sampler events): sampler events interleave at Priority::Stats
    // but never reorder existing event pairs and touch no RNG, so each
    // trial digest is unchanged.
    std::uint64_t scenarioIdx = 0;
    for (const GoldenScenario &sc : kScenarios) {
        const std::uint64_t seed = sweep::streamSeed(2026, scenarioIdx++);
        EXPECT_EQ(chaosTrialDigest(sc, seed, /*observed=*/true),
                  chaosTrialDigest(sc, seed, /*observed=*/false))
            << "scenario " << scenarioIdx - 1;
    }
}

TEST(GoldenTrace, RecordedChaosTrialsMatchUnrecordedDigests)
{
    // The flight recorder journals from hook points that read event
    // arguments already computed; with recording ON every trial digest
    // must stay pinned to the recording-OFF value, and the journal
    // itself must be non-trivial (the pin is not vacuous).
    std::uint64_t scenarioIdx = 0;
    for (const GoldenScenario &sc : kScenarios) {
        const std::uint64_t seed =
            sweep::streamSeed(2026, scenarioIdx++);
        record::FlightRecorder rec;
        EXPECT_EQ(chaosTrialDigest(sc, seed, /*observed=*/false, &rec),
                  chaosTrialDigest(sc, seed, /*observed=*/false))
            << "scenario " << scenarioIdx - 1;
        EXPECT_GT(rec.size(), 0u) << "scenario " << scenarioIdx - 1;
    }
}

/** Recompute both digests and rewrite golden_digests.inc in place. */
int
regenDigests()
{
    const std::uint64_t fig01 = fig01Digest(1);
    const std::uint64_t chaos = chaosDigest(1);
    const std::uint64_t sharded = shardedChaosDigest(1);
    const std::uint64_t byz = byzantineDigest(1);
    const std::uint64_t byzSharded = shardedByzantineDigest(1);
    const std::uint64_t thermal = thermalDigest(1);
    const std::uint64_t thermalSharded = shardedThermalDigest(1);
    const char *path = BLITZ_GOLDEN_DIGESTS_PATH;
    std::FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s for writing\n", path);
        return 1;
    }
    std::fprintf(
        f,
        "// Pinned golden digests. Regenerate with `golden_trace_test "
        "--regen`\n"
        "// (rewrites this file in the source tree); commit the change "
        "together\n"
        "// with the intended-behavior change that moved them.\n"
        "constexpr std::uint64_t kGoldenFig01 = %lluull;\n"
        "constexpr std::uint64_t kGoldenChaos = %lluull;\n"
        "constexpr std::uint64_t kGoldenChaosSharded = %lluull;\n"
        "constexpr std::uint64_t kGoldenByzantine = %lluull;\n"
        "constexpr std::uint64_t kGoldenByzantineSharded = %lluull;\n"
        "constexpr std::uint64_t kGoldenThermal = %lluull;\n"
        "constexpr std::uint64_t kGoldenThermalSharded = %lluull;\n",
        static_cast<unsigned long long>(fig01),
        static_cast<unsigned long long>(chaos),
        static_cast<unsigned long long>(sharded),
        static_cast<unsigned long long>(byz),
        static_cast<unsigned long long>(byzSharded),
        static_cast<unsigned long long>(thermal),
        static_cast<unsigned long long>(thermalSharded));
    std::fclose(f);
    std::printf("fig01: %llu (was %llu)\nchaos: %llu (was %llu)\n"
                "chaos-sharded: %llu (was %llu)\n"
                "byzantine: %llu (was %llu)\n"
                "byzantine-sharded: %llu (was %llu)\n"
                "thermal: %llu (was %llu)\n"
                "thermal-sharded: %llu (was %llu)\nwrote %s\n",
                static_cast<unsigned long long>(fig01),
                static_cast<unsigned long long>(kGoldenFig01),
                static_cast<unsigned long long>(chaos),
                static_cast<unsigned long long>(kGoldenChaos),
                static_cast<unsigned long long>(sharded),
                static_cast<unsigned long long>(kGoldenChaosSharded),
                static_cast<unsigned long long>(byz),
                static_cast<unsigned long long>(kGoldenByzantine),
                static_cast<unsigned long long>(byzSharded),
                static_cast<unsigned long long>(kGoldenByzantineSharded),
                static_cast<unsigned long long>(thermal),
                static_cast<unsigned long long>(kGoldenThermal),
                static_cast<unsigned long long>(thermalSharded),
                static_cast<unsigned long long>(kGoldenThermalSharded),
                path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--regen") == 0)
            return regenDigests();
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
