/**
 * @file
 * End-to-end exercise of the installed `blitz-top` binary (path
 * injected at compile time via BLITZ_TOP_TOOL): record a skewed
 * sharded run's HealthReport, render its summary and per-shard
 * imbalance table, and check the diff verdict's exit-code contract —
 * identical deterministic sections exit 0, a different shard layout
 * exits 1 (per-shard engine gauges move), usage and I/O errors exit 2.
 *
 * The suite name starts with "Prof" so the tsan preset's name filter
 * covers the tool's sharded recording path too.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace {

/** Run `blitz-top <args>`, capture combined output, return exit code. */
int
runTool(const std::string &args, std::string *output = nullptr)
{
    // PID-unique capture path: ctest runs this suite's tests as
    // concurrent processes, and a shared file would interleave them.
    const std::string outPath = testing::TempDir() + "blitz_top_out." +
                                std::to_string(getpid()) + ".txt";
    const std::string cmd = std::string(BLITZ_TOP_TOOL) + " " + args +
                            " > " + outPath + " 2>&1";
    const int status = std::system(cmd.c_str());
    if (output) {
        std::ifstream in(outPath);
        std::ostringstream ss;
        ss << in.rdbuf();
        *output = ss.str();
    }
    std::remove(outPath.c_str());
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return -1;
}

/** The small recording scenario every test below shares. */
const char *kScenario = "--d 8 --shards 2 --ticks 20000 --seed 11";

TEST(ProfTool, RecordThenSummaryAndImbalanceRender)
{
    const std::string rep = testing::TempDir() + "top_s2.json";
    std::string out;
    ASSERT_EQ(runTool("record " + rep + " " + kScenario, &out), 0)
        << out;
    EXPECT_NE(out.find("wrote"), std::string::npos);

    // The written document is a parseable HealthReport with both
    // sections populated.
    EXPECT_EQ(runTool("summary " + rep, &out), 0) << out;
    EXPECT_NE(out.find("deterministic"), std::string::npos);
    EXPECT_NE(out.find("wallclock"), std::string::npos);
    EXPECT_NE(out.find("coin.total"), std::string::npos);
    EXPECT_NE(out.find("prof.supersteps"), std::string::npos);

    // The imbalance table has one row per shard plus the ratio footer;
    // the recorded scenario is column-skewed, so it is non-vacuous.
    EXPECT_EQ(runTool("imbalance " + rep, &out), 0) << out;
    EXPECT_NE(out.find("shard"), std::string::npos);
    EXPECT_NE(out.find("exec_ms"), std::string::npos);
    EXPECT_NE(out.find("barrier_ms"), std::string::npos);
    EXPECT_NE(out.find("supersteps"), std::string::npos);
    EXPECT_NE(out.find("imbalance (hottest/coldest exec)"),
              std::string::npos);
    std::remove(rep.c_str());
}

TEST(ProfTool, DiffIsCleanForARepeatAndFlagsALayoutChange)
{
    const std::string a = testing::TempDir() + "top_a.json";
    const std::string b = testing::TempDir() + "top_b.json";
    const std::string c = testing::TempDir() + "top_c.json";
    std::string out;
    ASSERT_EQ(runTool("record " + a + " " + kScenario, &out), 0) << out;
    ASSERT_EQ(runTool("record " + b + " " + kScenario, &out), 0) << out;

    // Same config, same seed: deterministic sections are identical —
    // including the wall-clock-free engine gauges — so diff exits 0.
    EXPECT_EQ(runTool("diff " + a + " " + b, &out), 0) << out;
    EXPECT_NE(out.find("identical"), std::string::npos);

    // A different shard count keeps every domain outcome (coin totals,
    // exchange counts, NoC counters) but moves the per-shard engine
    // gauges, so diff exits 1 and names profiler keys.
    ASSERT_EQ(runTool("record " + c +
                          " --d 8 --shards 4 --ticks 20000 --seed 11",
                      &out),
              0)
        << out;
    EXPECT_EQ(runTool("diff " + a + " " + c, &out), 1) << out;
    EXPECT_NE(out.find("prof"), std::string::npos);
    EXPECT_EQ(out.find("coin.total"), std::string::npos)
        << "domain outcomes moved across shard layouts:\n" << out;

    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(c.c_str());
}

TEST(ProfTool, UsageAndIoErrorsExitTwo)
{
    std::string out;
    EXPECT_EQ(runTool("", &out), 2);
    EXPECT_NE(out.find("usage"), std::string::npos);
    EXPECT_EQ(runTool("frobnicate", &out), 2);
    EXPECT_EQ(runTool("summary " + testing::TempDir() +
                          "definitely_missing.json",
                      &out),
              2)
        << out;
    EXPECT_EQ(runTool("diff onlyone.json", &out), 2);

    // A truncated document is an I/O error, not a crash.
    const std::string broken = testing::TempDir() + "top_broken.json";
    std::ofstream(broken) << "{\"blitzHealth\":1,\"run\":\"x";
    EXPECT_EQ(runTool("imbalance " + broken, &out), 2) << out;
    std::remove(broken.c_str());
}

} // namespace
