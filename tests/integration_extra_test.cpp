/**
 * @file
 * Cross-module integration tests beyond the core soc_test suite:
 * silicon workload subsets, recorded-trace replay, static
 * provisioning, and AP/RP on the heterogeneous 4x4 mix.
 */

#include <gtest/gtest.h>

#include "soc/pm_impl.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"

namespace {

using namespace blitz;
using soc::PmConfig;
using soc::PmKind;
using soc::Soc;

PmConfig
pmConfig(PmKind kind, double budget)
{
    PmConfig pm;
    pm.kind = kind;
    pm.budgetMw = budget;
    return pm;
}

/** Silicon workload subsets all complete and respect the cap. */
class SiliconSubsets : public ::testing::TestWithParam<int>
{};

TEST_P(SiliconSubsets, CompletesUnderCap)
{
    Soc s(soc::make6x6SiliconSoc(),
          pmConfig(PmKind::BlitzCoin, soc::budgets::silicon), 31);
    auto dag = soc::siliconWorkload(s.config(), GetParam());
    auto st = s.run(dag);
    EXPECT_TRUE(st.completed);
    EXPECT_LE(st.trace->averageTotalMw(), soc::budgets::silicon);
}

INSTANTIATE_TEST_SUITE_P(Counts, SiliconSubsets,
                         ::testing::Values(3, 4, 5, 7));

TEST(IntegrationExtra, RunRecordsActivityTrace)
{
    Soc s(soc::make3x3AvSoc(), pmConfig(PmKind::BlitzCoin, 120.0), 7);
    auto dag = soc::avDependent(s.config(), 2);
    auto st = s.run(dag);
    ASSERT_TRUE(st.completed);
    // One start and one end edge per task.
    EXPECT_EQ(st.activity.size(), 2 * dag.size());
    EXPECT_LE(st.activity.horizon(), st.execTime);
    // Edges alternate per tile (start/end pairing).
    std::vector<int> open(s.config().size(), 0);
    for (const auto &e : st.activity.events()) {
        open[e.tile] += e.startsExecution ? 1 : -1;
        EXPECT_GE(open[e.tile], 0);
        EXPECT_LE(open[e.tile], 1);
    }
}

TEST(IntegrationExtra, RecordedTraceReplaysOnBehavioralEngine)
{
    Soc s(soc::make3x3AvSoc(), pmConfig(PmKind::BlitzCoin, 120.0), 7);
    auto st = s.run(soc::avDependent(s.config(), 2));
    ASSERT_GT(st.activity.size(), 0u);

    coin::EngineConfig cfg;
    coin::MeshSim mesh(noc::Topology(3, 3, true), cfg, 7);
    mesh.randomizeHas(s.pm().scale().poolCoins);
    auto rs = st.activity.replayOn(mesh);
    EXPECT_GT(rs.exchanges, 0u);
    EXPECT_EQ(mesh.ledger().totalHas(), s.pm().scale().poolCoins);
    EXPECT_LE(rs.finalMaxError, 2.5);
}

TEST(IntegrationExtra, StaticParticipantsNarrowTheSplit)
{
    // Provisioning for fewer tiles gives each a larger share, so the
    // workload's tiles run faster than under an all-tiles split.
    auto cfg = soc::make6x6SiliconSoc();
    auto dag = soc::siliconWorkload(cfg, 3);

    PmConfig narrow = pmConfig(PmKind::StaticAlloc,
                               soc::budgets::silicon);
    for (const auto &t : dag.tasks())
        narrow.staticParticipants.push_back(t.tile);
    Soc s1(cfg, narrow, 5);
    auto fast = s1.run(dag);

    Soc s2(cfg, pmConfig(PmKind::StaticAlloc, soc::budgets::silicon),
           5);
    auto slow = s2.run(dag);

    ASSERT_TRUE(fast.completed);
    ASSERT_TRUE(slow.completed);
    EXPECT_LT(fast.execTime, slow.execTime);
}

TEST(IntegrationExtra, RpBeatsApOnHeterogeneousParallelMix)
{
    auto run = [](coin::AllocPolicy alloc) {
        PmConfig pm = pmConfig(PmKind::BlitzCoin,
                               soc::budgets::vision33Percent);
        pm.alloc = alloc;
        Soc s(soc::make4x4VisionSoc(), pm, 21);
        return s.run(soc::visionParallel(s.config())).execTime;
    };
    EXPECT_LT(run(coin::AllocPolicy::RelativeProportional),
              run(coin::AllocPolicy::AbsoluteProportional));
}

TEST(IntegrationExtra, ResponseSummariesPopulatedForAdaptiveKinds)
{
    for (PmKind kind : {PmKind::BlitzCoin, PmKind::BlitzCoinCentral,
                        PmKind::CentralRoundRobin}) {
        Soc s(soc::make3x3AvSoc(), pmConfig(kind, 120.0), 9);
        auto st = s.run(soc::avParallel(s.config()));
        EXPECT_GT(st.responseTicks.count(), 0u)
            << soc::pmKindName(kind);
        EXPECT_GT(st.responseTicks.mean(), 0.0);
    }
}

TEST(IntegrationExtra, BlitzCoinScalesToSyntheticSoc)
{
    // A 5x5 synthetic SoC (24 managed accelerators) end to end.
    auto cfg = soc::makeSyntheticSoc(5, power::catalog::fft());
    PmConfig pm = pmConfig(PmKind::BlitzCoin, 300.0);
    Soc s(cfg, pm, 3);
    workload::Dag dag;
    double us = 200.0;
    for (noc::NodeId id : cfg.managedAccelerators()) {
        dag.add(cfg.tile(id).name, id,
                us * cfg.tile(id).curve->fMax());
        us += 10.0;
    }
    auto st = s.run(dag);
    EXPECT_TRUE(st.completed);
    EXPECT_LE(st.trace->averageTotalMw(), 300.0 * 1.02);
    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    EXPECT_EQ(bc.clusterCoins(), bc.scale().poolCoins);
}

TEST(IntegrationExtra, HigherCoinPrecisionTightensAllocation)
{
    // 8-bit coins quantize power 4x finer than 6-bit; the equilibrium
    // allocation error (in mW) shrinks accordingly.
    auto quantum = [](int bits) {
        PmConfig pm = pmConfig(PmKind::BlitzCoin, 120.0);
        pm.coinBits = bits;
        Soc s(soc::make3x3AvSoc(), pm, 5);
        return s.pm().scale().mwPerCoin();
    };
    EXPECT_NEAR(quantum(6) / quantum(8), 4.0, 0.1);
}

} // namespace
