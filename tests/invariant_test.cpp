/**
 * @file
 * Property-based invariant suite over the observability plane.
 *
 * Randomized topologies x fault mixes x seeds, with every assertion
 * driven through metrics snapshots (Registry::onSample) rather than by
 * poking simulator internals — so the suite simultaneously checks the
 * protocol invariants and that the metrics plane reports them
 * faithfully.
 *
 * Behavioral engine (MeshSim): the ledger moves both halves of every
 * exchange atomically, so conservation is exact at every snapshot, and
 * holdings must stay non-negative and under any configured thermal
 * cap.
 *
 * Packet-accurate cluster (ChaosCluster): an in-flight one-way
 * exchange holds its delta in a CoinUpdate packet the metrics plane
 * cannot see, and crashes destroy coins until the audit watchdog
 * remints them — so per-snapshot conservation is an envelope (modulo
 * audited remints and bounded in-flight slack), with the exact
 * invariant asserted at quiesce. Counters must be monotonic and must
 * match their ground-truth sources exactly at the final sample.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coin/engine.hpp"
#include "fault/chaos.hpp"
#include "sim/rng.hpp"
#include "trace/attach.hpp"
#include "trace/metrics.hpp"

namespace {

using namespace blitz;

std::size_t
col(const trace::Registry &reg, const std::string &name)
{
    const auto &schema = reg.schema();
    for (std::size_t i = 0; i < schema.size(); ++i) {
        if (schema[i].name == name)
            return i;
    }
    ADD_FAILURE() << "no metric column named " << name;
    return 0;
}

// ------------------------------------------------------------ MeshSim

TEST(Invariant, MeshLedgerConservedCappedNonNegativeAtEverySnapshot)
{
    for (std::uint64_t trial = 1; trial <= 12; ++trial) {
        sim::Rng gen(trial * 0x9e3779b97f4a7c15ull);
        const int w = static_cast<int>(3 + gen.below(4));
        const int h = static_cast<int>(3 + gen.below(4));
        const std::size_t n = static_cast<std::size_t>(w * h);

        coin::EngineConfig cfg;
        cfg.mode = gen.chance(0.5) ? coin::ExchangeMode::OneWay
                                   : coin::ExchangeMode::FourWay;
        cfg.wrap = gen.chance(0.5);
        cfg.lossRate = gen.chance(0.33) ? 0.05 : 0.0;

        std::vector<coin::Coins> maxes(n);
        for (std::size_t i = 0; i < n; ++i)
            maxes[i] = gen.range(0, 24);
        const bool capped = gen.chance(0.5);
        if (capped) {
            cfg.thermalCaps.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                cfg.thermalCaps[i] = maxes[i] * 2 + 8;
        }

        coin::MeshSim sim(noc::Topology(w, h, cfg.wrap), cfg,
                          trial * 31 + 7);
        trace::Registry reg;
        trace::attachMeshMetrics(sim, reg, /*interval=*/512);

        coin::Coins total = 0;
        for (std::size_t i = 0; i < n; ++i) {
            sim.setMax(i, maxes[i]);
            const coin::Coins has =
                maxes[i] > 0 ? gen.range(0, maxes[i]) : 0;
            sim.setHas(i, has);
            total += has;
        }

        const std::size_t totalCol = col(reg, "coin.total");
        std::vector<std::size_t> hasCol(n);
        for (std::size_t i = 0; i < n; ++i)
            hasCol[i] = col(reg, "coin.has." + std::to_string(i));

        std::optional<sim::Tick> lastTick;
        std::size_t rows = 0;
        reg.onSample = [&](const trace::Snapshot &s) {
            ++rows;
            if (lastTick)
                ASSERT_GT(s.tick, *lastTick) << "trial " << trial;
            lastTick = s.tick;
            ASSERT_EQ(s.values[totalCol], static_cast<double>(total))
                << "conservation broke at tick " << s.tick << ", trial "
                << trial;
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_GE(s.values[hasCol[i]], 0.0)
                    << "tile " << i << " negative at tick " << s.tick;
                if (capped) {
                    ASSERT_LE(s.values[hasCol[i]],
                              static_cast<double>(cfg.thermalCaps[i]))
                        << "tile " << i << " over its thermal cap at "
                        << "tick " << s.tick;
                }
            }
        };

        sim.runFor(100'000);
        EXPECT_GT(rows, 50u) << "sampler barely fired, trial " << trial;
    }
}

// ------------------------------------------------------- ChaosCluster

TEST(Invariant, ChaosClusterEnvelopeAndCountersAtEverySnapshot)
{
    for (std::uint64_t trial = 1; trial <= 6; ++trial) {
        sim::Rng gen(trial * 0xd1b54a32d192ed03ull);
        const int d = static_cast<int>(3 + gen.below(3));
        const auto n = static_cast<std::size_t>(d * d);

        fault::ChaosConfig cc;
        cc.width = d;
        cc.height = d;
        cc.seedBase = 500 + trial;
        cc.fault.seed = trial;
        cc.fault.coinTrafficOnly = true;
        if (gen.chance(0.6))
            cc.fault.base.drop = 0.02 + 0.03 * gen.chance(0.5);
        if (gen.chance(0.4))
            cc.fault.base.duplicate = 0.02;
        if (gen.chance(0.4))
            cc.fault.base.corrupt = 0.02;
        const bool crash = gen.chance(0.5);
        if (crash) {
            cc.fault.outages.push_back(
                {static_cast<noc::NodeId>(gen.below(n)), 2'000, 10'000,
                 false});
            cc.auditPeriod = 4'096;
        }

        fault::ChaosCluster cluster(cc);
        trace::Registry reg;
        cluster.attachMetrics(&reg, /*interval=*/1'024);

        coin::Coins demand = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const coin::Coins m = gen.range(4, 32);
            cluster.setMax(i, m);
            demand += m;
        }
        const coin::Coins pool = demand / 2;
        const std::size_t quarter = std::max<std::size_t>(n / 4, 1);
        for (std::size_t i = 0; i < quarter; ++i)
            cluster.setHas(i,
                           pool / static_cast<coin::Coins>(quarter));
        cluster.sealProvision();
        cluster.startAll();
        const auto expected =
            static_cast<double>(cluster.audit().expected());

        const std::size_t totalCol = col(reg, "coin.total");
        const std::size_t mintedCol = col(reg, "audit.minted");
        // Everything that must never decrease between snapshots.
        const char *monotonic[] = {
            "coin.exchanges_initiated", "coin.exchanges_moved",
            "coin.exchanges_timed_out", "coin.recoveries_sent",
            "coin.updates_recovered",   "coin.duplicates_ignored",
            "coin.corrupted_dropped",   "coin.exchanges_abandoned",
            "audit.gaps_closed",        "audit.minted",
            "audit.burned",             "noc.packets_sent",
            "noc.packets_delivered",    "noc.packets_dropped",
            "noc.total_hops",           "fault.drops",
            "fault.duplicates",         "fault.corruptions",
            "fault.outage_drops",       "sim.events_scheduled",
            "sim.events_executed",
        };
        std::vector<std::size_t> monoCol;
        for (const char *name : monotonic)
            monoCol.push_back(col(reg, name));

        std::vector<double> prev(monoCol.size(), 0.0);
        std::size_t rows = 0;
        reg.onSample = [&](const trace::Snapshot &s) {
            ++rows;
            const double total = s.values[totalCol];
            const double minted = s.values[mintedCol];
            ASSERT_GE(total, 0.0)
                << "negative aggregate ledger at tick " << s.tick;
            // Conservation envelope: alive coins can only come from
            // the provisioned pool plus audited remints, plus the
            // delta of at most one in-flight exchange per unit (a
            // responder applies its half before the initiator hears
            // back). Each delta is bounded by the pool.
            ASSERT_LE(total, 2.0 * expected + minted)
                << "coins appeared from nowhere at tick " << s.tick;
            for (std::size_t i = 0; i < monoCol.size(); ++i) {
                ASSERT_GE(s.values[monoCol[i]], prev[i])
                    << monotonic[i] << " went backwards at tick "
                    << s.tick;
                prev[i] = s.values[monoCol[i]];
            }
        };

        cluster.eq().runUntil(60'000);
        EXPECT_GT(rows, 20u) << "sampler barely fired, trial " << trial;

        // Quiesce asserts the exact invariant internally: after the
        // drain + audit sweep, alive units hold the provisioned total.
        cluster.quiesce();

        // Registry columns must agree exactly with their ground-truth
        // sources when sampled side by side.
        reg.onSample = nullptr;
        reg.sample(cluster.eq().now());
        const auto &last = reg.snapshots().back();
        const auto &fs = cluster.plane().stats();
        EXPECT_EQ(last.values[col(reg, "fault.drops")],
                  static_cast<double>(fs.drops));
        EXPECT_EQ(last.values[col(reg, "fault.corruptions")],
                  static_cast<double>(fs.corruptions));
        EXPECT_EQ(last.values[col(reg, "fault.outage_drops")],
                  static_cast<double>(fs.outageDrops));
        EXPECT_EQ(last.values[col(reg, "noc.packets_sent")],
                  static_cast<double>(cluster.net().packetsSent()));
        std::uint64_t moved = 0, dups = 0;
        for (std::size_t i = 0; i < n; ++i) {
            moved += cluster.unit(i).exchangesMoved();
            dups += cluster.unit(i).duplicatesIgnored();
        }
        EXPECT_EQ(last.values[col(reg, "coin.exchanges_moved")],
                  static_cast<double>(moved));
        EXPECT_EQ(last.values[col(reg, "coin.duplicates_ignored")],
                  static_cast<double>(dups));
        EXPECT_EQ(last.values[totalCol],
                  static_cast<double>(cluster.totalCoins()));
    }
}

} // namespace
