/**
 * @file
 * Tests for the coin ledger: totals, error metrics, conservation.
 */

#include <gtest/gtest.h>

#include "coin/ledger.hpp"
#include "sim/logging.hpp"
#include "sim/rng.hpp"

namespace {

using namespace blitz;
using coin::Ledger;

TEST(Ledger, StartsZeroed)
{
    Ledger l(4);
    EXPECT_EQ(l.size(), 4u);
    EXPECT_EQ(l.totalHas(), 0);
    EXPECT_EQ(l.totalMax(), 0);
    EXPECT_DOUBLE_EQ(l.alpha(), 0.0);
    EXPECT_DOUBLE_EQ(l.globalError(), 0.0);
}

TEST(Ledger, TotalsTrackMutations)
{
    Ledger l(3);
    l.setMax(0, 10);
    l.setMax(1, 20);
    l.setHas(0, 6);
    l.setHas(2, 4);
    EXPECT_EQ(l.totalMax(), 30);
    EXPECT_EQ(l.totalHas(), 10);
    l.setMax(0, 0); // activity end
    EXPECT_EQ(l.totalMax(), 20);
}

TEST(Ledger, AlphaIsHasOverMax)
{
    Ledger l(2);
    l.setMax(0, 10);
    l.setMax(1, 30);
    l.setHas(0, 5);
    l.setHas(1, 15);
    EXPECT_DOUBLE_EQ(l.alpha(), 0.5);
}

TEST(Ledger, TransferConservesTotal)
{
    Ledger l(2);
    l.setHas(0, 10);
    l.transfer(0, 1, 4);
    EXPECT_EQ(l.has(0), 6);
    EXPECT_EQ(l.has(1), 4);
    EXPECT_EQ(l.totalHas(), 10);
    l.transfer(0, 1, -2); // negative reverses direction
    EXPECT_EQ(l.has(0), 8);
    EXPECT_EQ(l.has(1), 2);
    EXPECT_EQ(l.totalHas(), 10);
}

TEST(Ledger, TransferCanGoNegativeTransiently)
{
    // The hardware's sign bit: in-flight exchanges may overdraw.
    Ledger l(2);
    l.setHas(0, 3);
    l.transfer(0, 1, 5);
    EXPECT_EQ(l.has(0), -2);
    EXPECT_EQ(l.totalHas(), 3);
}

TEST(Ledger, ErrorMetricsMatchDefinition)
{
    // Paper Section III-E: alpha = 30/40; E_i = |has - alpha*max|.
    Ledger l(2);
    l.setMax(0, 10);
    l.setMax(1, 30);
    l.setHas(0, 10);
    l.setHas(1, 20);
    const double alpha = 30.0 / 40.0;
    EXPECT_DOUBLE_EQ(l.tileError(0), std::abs(10.0 - alpha * 10.0));
    EXPECT_DOUBLE_EQ(l.tileError(1), std::abs(20.0 - alpha * 30.0));
    EXPECT_DOUBLE_EQ(l.globalError(),
                     (l.tileError(0) + l.tileError(1)) / 2.0);
    EXPECT_DOUBLE_EQ(l.maxError(),
                     std::max(l.tileError(0), l.tileError(1)));
}

TEST(Ledger, PerfectDistributionHasZeroError)
{
    Ledger l(3);
    l.setMax(0, 10);
    l.setMax(1, 20);
    l.setMax(2, 30);
    l.setHas(0, 5);
    l.setHas(1, 10);
    l.setHas(2, 15);
    EXPECT_DOUBLE_EQ(l.globalError(), 0.0);
    EXPECT_TRUE(l.converged(0.01));
}

TEST(Ledger, InactiveTileCoinsCountAsError)
{
    Ledger l(2);
    l.setMax(0, 10);
    l.setHas(0, 5);
    l.setHas(1, 5); // parked on an inactive tile
    // alpha = 10/10 = 1; E0 = |5-10| = 5, E1 = |5-0| = 5.
    EXPECT_DOUBLE_EQ(l.globalError(), 5.0);
}

TEST(Ledger, ClearResetsEverything)
{
    Ledger l(2);
    l.setMax(0, 5);
    l.setHas(0, 3);
    l.clear();
    EXPECT_EQ(l.totalHas(), 0);
    EXPECT_EQ(l.totalMax(), 0);
    EXPECT_EQ(l.has(0), 0);
}

TEST(Ledger, InvalidOperationsPanic)
{
    Ledger l(2);
    EXPECT_THROW(l.setMax(5, 1), sim::PanicError);
    EXPECT_THROW(l.setMax(0, -1), sim::PanicError);
    EXPECT_THROW(l.transfer(0, 0, 1), sim::PanicError);
    EXPECT_THROW(Ledger(0), sim::PanicError);
}

/** Property: random transfer sequences never change the total. */
TEST(LedgerProperty, RandomTransfersConserve)
{
    sim::Rng rng(77);
    Ledger l(16);
    for (std::size_t i = 0; i < 16; ++i)
        l.setHas(i, rng.range(0, 20));
    const coin::Coins total = l.totalHas();
    for (int step = 0; step < 5000; ++step) {
        auto a = static_cast<std::size_t>(rng.below(16));
        auto b = static_cast<std::size_t>(rng.below(16));
        if (a == b)
            continue;
        l.transfer(a, b, rng.range(-5, 5));
        ASSERT_EQ(l.totalHas(), total);
    }
}

} // namespace
