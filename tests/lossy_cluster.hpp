/**
 * @file
 * Reusable lossy-cluster fixture for fault and recovery tests.
 *
 * A thin veneer over fault::ChaosCluster: a d x d all-tiles BlitzCoin
 * mesh with a FaultPlane attached, configured through the same
 * FaultConfig the benches use — drop/duplicate/corrupt rates, per-
 * message-type scopes, crash windows, partitions. Tests that used to
 * hand-roll packet-dropping handler wrappers build one of these
 * instead.
 */

#ifndef BLITZ_TESTS_LOSSY_CLUSTER_HPP
#define BLITZ_TESTS_LOSSY_CLUSTER_HPP

#include "fault/chaos.hpp"

namespace blitz::testing {

/**
 * ChaosConfig preset matching the historical fixture: faults strike
 * once per packet at the tile boundary (endpointOnly), unit seeds are
 * 77 + id, and the fault RNG is seeded independently of the units.
 */
inline fault::ChaosConfig
lossyConfig(int d, double dropRate,
            blitzcoin::UnitConfig unit = blitzcoin::UnitConfig{},
            std::uint64_t faultSeed = 424242)
{
    fault::ChaosConfig cc;
    cc.width = d;
    cc.height = d;
    cc.unit = unit;
    cc.seedBase = 77;
    cc.fault.seed = faultSeed;
    cc.fault.endpointOnly = true;
    cc.fault.base.drop = dropRate;
    return cc;
}

/** A d x d cluster dropping packets at the tile boundary. */
struct LossyCluster
{
    fault::ChaosCluster c;

    explicit LossyCluster(int d, double dropRate = 0.0,
                          blitzcoin::UnitConfig unit =
                              blitzcoin::UnitConfig{})
        : c(lossyConfig(d, dropRate, unit))
    {
    }

    explicit LossyCluster(const fault::ChaosConfig &cfg) : c(cfg) {}

    sim::EventQueue &eq() { return c.eq(); }
    blitzcoin::BlitzCoinUnit &unit(std::size_t i) { return c.unit(i); }
    coin::Coins totalCoins() const { return c.totalCoins(); }
    void startAll() { c.startAll(); }

    /** Packets destroyed by the fault plane so far. */
    std::uint64_t
    dropped()
    {
        return c.net().packetsDropped();
    }
};

} // namespace blitz::testing

#endif // BLITZ_TESTS_LOSSY_CLUSTER_HPP
