/**
 * @file
 * Mega-mesh smoke suite (`ctest -L megamesh`, megamesh preset): the
 * 100x100 (10,000 node) configurations from the scaling study, run at
 * small horizons so they ride in tier-1. These pin three properties
 * the mega-mesh hot path must keep: routed steady-state traffic
 * completes and conserves packets, sharded runs are bit-identical to
 * the unsharded kernel at any shard count, and coin diffusion makes
 * monotone progress at 10^4 tiles.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "coin/engine.hpp"
#include "noc/network.hpp"
#include "sim/shard.hpp"

namespace {

using namespace blitz;

/** Self-rescheduling xorshift traffic source (bench_ops shape). */
struct Sender
{
    noc::Network *net;
    sim::EventQueue *eq;
    noc::NodeId src;
    std::uint32_t state;
    std::uint32_t nodes;
    sim::Tick period;

    void
    operator()() const
    {
        std::uint32_t x = state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        noc::Packet p;
        p.src = src;
        p.dst = static_cast<noc::NodeId>(x % nodes);
        p.type = noc::MsgType::Generic;
        p.payload[0] = x;
        net->send(p);
        Sender next = *this;
        next.state = x;
        eq->scheduleIn(period, next);
    }
};

constexpr int kDim = 100;
constexpr sim::Tick kHorizon = 4096; // small: this rides in tier-1
constexpr noc::NodeId kSenderStride = 16;

/** Ordered and order-insensitive per-node delivery digests. */
struct DigestPair
{
    /// FNV fold of (tick, src, payload) in arrival order per node:
    /// any reordering — not just a lost packet — changes it.
    std::vector<std::uint64_t> ordered;
    /// Commutative sum of per-delivery hashes per node: identical
    /// whenever the *set* of (tick, src, payload) deliveries matches,
    /// regardless of same-tick ordering.
    std::vector<std::uint64_t> unordered;

    bool
    operator==(const DigestPair &o) const
    {
        return ordered == o.ordered && unordered == o.unordered;
    }
};

/**
 * Delivery digests after a fixed-horizon 100x100 run at @p shards
 * shards (0 = legacy unsharded kernel).
 */
DigestPair
runDigest(std::uint32_t shards, std::uint64_t *delivered)
{
    sim::EventQueue eq;
    std::unique_ptr<sim::ShardGroup> group;
    if (shards > 0) {
        group = std::make_unique<sim::ShardGroup>(
            eq, shards,
            sim::columnBands(kDim, kDim, shards));
    }
    noc::Topology topo(kDim, kDim, false);
    noc::Network net(eq, topo);
    if (group)
        net.enableSharding(*group);
    const auto n = static_cast<std::uint32_t>(topo.size());
    DigestPair d;
    d.ordered.assign(n, 1469598103934665603ull);
    d.unordered.assign(n, 0);
    std::uint64_t *op = d.ordered.data();
    std::uint64_t *up = d.unordered.data();
    sim::EventQueue *ep = &eq;
    for (noc::NodeId id = 0; id < n; ++id) {
        net.setHandler(id, [op, up, ep, id](const noc::Packet &p) {
            std::uint64_t h = op[id];
            h = (h ^ ep->now()) * 1099511628211ull;
            h = (h ^ p.src) * 1099511628211ull;
            h = (h ^ p.payload[0]) * 1099511628211ull;
            op[id] = h;
            std::uint64_t one = 1469598103934665603ull;
            one = (one ^ ep->now()) * 1099511628211ull;
            one = (one ^ p.src) * 1099511628211ull;
            one = (one ^ p.payload[0]) * 1099511628211ull;
            up[id] += one;
        });
    }
    for (noc::NodeId id = 0; id < n; id += kSenderStride) {
        const Sender s{&net, &eq, id, 0x9e3779b9u + id, n, 64};
        if (group)
            eq.scheduleAtNode(id, 1 + (id % 29), s);
        else
            eq.schedule(1 + (id % 29), s);
    }
    eq.runUntil(kHorizon);
    *delivered = net.packetsDelivered();
    return d;
}

TEST(Megamesh, NocSteady100x100Smoke)
{
    std::uint64_t delivered = 0;
    const auto digest = runDigest(0, &delivered);
    // 625 sources injecting every 64 ticks for 4096 ticks: tens of
    // thousands of routed deliveries even after subtracting packets
    // still in flight at the horizon.
    EXPECT_GT(delivered, 20'000u);
    std::size_t touched = 0;
    for (std::uint64_t h : digest.ordered)
        touched += h != 1469598103934665603ull;
    // Destinations are xorshift-uniform over all 10,000 nodes.
    EXPECT_GT(touched, 5'000u);
}

TEST(Megamesh, Sharded100x100BitIdenticalAcrossShardCounts)
{
    // The batched same-tick delivery path must preserve the key
    // discipline at mega-mesh scale: per-node delivery order (ticks,
    // sources, payloads) identical across BSP runs at 1, 2, and 4
    // shards — both the ordered and the set digests. The legacy
    // kernel is deliberately NOT compared digest-for-digest: it
    // orders same-tick events by global FIFO seq rather than the
    // sharded locus key, and with one-packet-per-link router
    // serialization that ordering decides contention, shifting
    // individual delivery ticks (the documented shard_test caveat).
    // Its aggregate throughput at the same horizon must still agree
    // to within the in-flight population.
    std::uint64_t dLegacy = 0, d1 = 0, d2 = 0, d4 = 0;
    const auto legacy = runDigest(0, &dLegacy);
    const auto s1 = runDigest(1, &d1);
    const auto s2 = runDigest(2, &d2);
    const auto s4 = runDigest(4, &d4);
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(d1, d4);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s4);
    EXPECT_NEAR(static_cast<double>(dLegacy),
                static_cast<double>(d1),
                0.01 * static_cast<double>(d1))
        << "legacy and sharded kernels disagree beyond contention "
           "reordering";
    std::size_t touched = 0;
    for (std::uint64_t h : legacy.ordered)
        touched += h != 1469598103934665603ull;
    EXPECT_GT(touched, 5'000u);
}

TEST(Megamesh, Diffusion100x100MakesProgress)
{
    // Behavioral engine at 10^4 tiles: from the standard half-demand
    // provisioning, mean coin error must fall monotonically-ish over
    // a short horizon (full convergence is the analytic_vs_sim run).
    coin::MeshSim sim(noc::Topology::square(kDim),
                      coin::EngineConfig{}, 7);
    coin::Coins demand = 0;
    for (std::size_t t = 0; t < sim.ledger().size(); ++t) {
        const coin::Coins m = 8 << (t % 3);
        sim.setMax(t, m);
        demand += m;
    }
    sim.clusterHas(demand / 2);
    const double e0 = sim.globalError();
    // Threshold 0 can never be met, so these run to the horizon.
    sim.runUntilConverged(0.0, 1000);
    const double e1 = sim.globalError();
    sim.runUntilConverged(0.0, 2000);
    const double e2 = sim.globalError();
    EXPECT_LT(e1, e0 * 0.8) << "no early diffusion progress";
    EXPECT_LT(e2, e1) << "diffusion stalled";
}

} // namespace
