/**
 * @file
 * Tests for logical neighborhoods over managed tile subsets.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "coin/neighborhood.hpp"
#include "soc/config.hpp"

namespace {

using namespace blitz;

std::vector<bool>
flags(std::size_t n, std::initializer_list<noc::NodeId> managed)
{
    std::vector<bool> f(n, false);
    for (noc::NodeId id : managed)
        f[id] = true;
    return f;
}

TEST(Neighborhood, FullyManagedMatchesTorus)
{
    noc::Topology topo(3, 3, false);
    std::vector<bool> all(topo.size(), true);
    auto hoods = coin::managedNeighborhoods(topo, all);
    noc::Topology torus(3, 3, true);
    for (noc::NodeId id = 0; id < topo.size(); ++id) {
        auto expected = torus.neighbors(id);
        auto got = hoods[id].neighbors;
        std::sort(expected.begin(), expected.end());
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, expected) << "tile " << id;
    }
}

TEST(Neighborhood, WalksSkipUnmanagedTiles)
{
    // Row of 5 with the middle tile unmanaged: 1 and 3 see each other
    // by walking across tile 2.
    noc::Topology topo(5, 1, false);
    auto hoods =
        coin::managedNeighborhoods(topo, flags(5, {1u, 3u}));
    EXPECT_EQ(hoods[1].neighbors, (std::vector<noc::NodeId>{3u}));
    EXPECT_EQ(hoods[3].neighbors, (std::vector<noc::NodeId>{1u}));
}

TEST(Neighborhood, UnmanagedTilesGetEmptyLists)
{
    noc::Topology topo(3, 3, false);
    auto hoods = coin::managedNeighborhoods(topo, flags(9, {0u, 8u}));
    EXPECT_TRUE(hoods[4].neighbors.empty());
    EXPECT_TRUE(hoods[4].far.empty());
}

TEST(Neighborhood, SingleManagedTileHasNoPartners)
{
    noc::Topology topo(3, 3, false);
    auto hoods = coin::managedNeighborhoods(topo, flags(9, {4u}));
    EXPECT_TRUE(hoods[4].neighbors.empty());
}

TEST(Neighborhood, DiagonalPairFallsBackToNearest)
{
    // Tiles 0 and 4 on a 3x3 share no row/column in the managed set?
    // 0 is (0,0), 4 is (1,1): no shared axis, so the directional walk
    // finds nothing and the nearest-fallback must connect them.
    noc::Topology topo(3, 3, false);
    auto hoods = coin::managedNeighborhoods(topo, flags(9, {0u, 4u}));
    EXPECT_EQ(hoods[0].neighbors, (std::vector<noc::NodeId>{4u}));
    EXPECT_EQ(hoods[4].neighbors, (std::vector<noc::NodeId>{0u}));
}

TEST(Neighborhood, FarListIsManagedNonNeighbors)
{
    noc::Topology topo(4, 4, false);
    auto managed = flags(16, {0u, 1u, 2u, 3u, 12u, 13u, 14u, 15u});
    auto hoods = coin::managedNeighborhoods(topo, managed);
    for (noc::NodeId id : {0u, 1u, 2u, 3u, 12u, 13u, 14u, 15u}) {
        for (noc::NodeId f : hoods[id].far) {
            EXPECT_TRUE(managed[f]);
            EXPECT_EQ(std::find(hoods[id].neighbors.begin(),
                                hoods[id].neighbors.end(), f),
                      hoods[id].neighbors.end());
        }
        EXPECT_EQ(hoods[id].neighbors.size() + hoods[id].far.size(),
                  7u); // every other managed tile is one or the other
    }
}

TEST(Neighborhood, SiliconPmClusterIsConnected)
{
    // The 6x6 prototype's 10-tile PM cluster: every managed tile must
    // have at least two logical neighbors and reach all others.
    soc::SocConfig cfg = soc::make6x6SiliconSoc();
    noc::Topology topo(cfg.width, cfg.height, false);
    std::vector<bool> managed(cfg.size(), false);
    for (noc::NodeId id : cfg.managedAccelerators())
        managed[id] = true;
    auto hoods = coin::managedNeighborhoods(topo, managed);

    for (noc::NodeId id : cfg.managedAccelerators()) {
        EXPECT_GE(hoods[id].neighbors.size(), 2u) << "tile " << id;
        EXPECT_EQ(hoods[id].neighbors.size() + hoods[id].far.size(),
                  9u);
    }

    // Reachability via neighbor edges only (ignoring random pairing).
    std::vector<bool> seen(cfg.size(), false);
    std::vector<noc::NodeId> stack{cfg.managedAccelerators().front()};
    seen[stack.front()] = true;
    std::size_t count = 0;
    while (!stack.empty()) {
        noc::NodeId at = stack.back();
        stack.pop_back();
        ++count;
        for (noc::NodeId n : hoods[at].neighbors) {
            if (!seen[n]) {
                seen[n] = true;
                stack.push_back(n);
            }
        }
    }
    EXPECT_EQ(count, cfg.managedAccelerators().size());
}

TEST(Neighborhood, Av3x3ClusterShape)
{
    soc::SocConfig cfg = soc::make3x3AvSoc();
    noc::Topology topo(cfg.width, cfg.height, false);
    std::vector<bool> managed(cfg.size(), false);
    for (noc::NodeId id : cfg.managedAccelerators())
        managed[id] = true;
    auto hoods = coin::managedNeighborhoods(topo, managed);
    // All 6 accelerators participate; each sees only managed tiles.
    for (noc::NodeId id : cfg.managedAccelerators()) {
        EXPECT_FALSE(hoods[id].neighbors.empty());
        for (noc::NodeId n : hoods[id].neighbors)
            EXPECT_TRUE(managed[n]);
    }
}

TEST(Neighborhood, SizeMismatchPanics)
{
    noc::Topology topo(2, 2, false);
    std::vector<bool> wrong(3, true);
    EXPECT_THROW(coin::managedNeighborhoods(topo, wrong),
                 sim::PanicError);
}

} // namespace
