/**
 * @file
 * Tests for the packet-switched mesh network: delivery, latency,
 * ordering, contention, and per-plane independence.
 */

#include <gtest/gtest.h>

#include <vector>

#include "noc/network.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace blitz;

struct NetFixture : ::testing::Test
{
    sim::EventQueue eq;
    noc::Topology topo{4, 4, false};
    noc::Network net{eq, topo};

    noc::Packet
    makePacket(noc::NodeId src, noc::NodeId dst,
               noc::Plane plane = noc::Plane::Service)
    {
        noc::Packet p;
        p.src = src;
        p.dst = dst;
        p.plane = plane;
        p.type = noc::MsgType::Generic;
        return p;
    }
};

TEST_F(NetFixture, DeliversToHandler)
{
    int got = 0;
    net.setHandler(5, [&](const noc::Packet &p) {
        ++got;
        EXPECT_EQ(p.src, 0u);
        EXPECT_EQ(p.dst, 5u);
    });
    net.send(makePacket(0, 5));
    eq.runUntil();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(net.packetsSent(), 1u);
    EXPECT_EQ(net.packetsDelivered(), 1u);
}

TEST_F(NetFixture, LatencyIsHopsPlusEjection)
{
    sim::Tick arrival = 0;
    net.setHandler(15, [&](const noc::Packet &) { arrival = eq.now(); });
    net.send(makePacket(0, 15)); // distance 6 on a 4x4 mesh
    eq.runUntil();
    EXPECT_EQ(arrival, 7u); // 6 router hops + 1 ejection cycle
    EXPECT_EQ(net.totalHops(), 6u);
    EXPECT_DOUBLE_EQ(net.latency().mean(), 7.0);
}

TEST_F(NetFixture, SelfSendTakesOneEjectionCycle)
{
    sim::Tick arrival = 0;
    net.setHandler(3, [&](const noc::Packet &) { arrival = eq.now(); });
    net.send(makePacket(3, 3));
    eq.runUntil();
    EXPECT_EQ(arrival, 1u);
    EXPECT_EQ(net.totalHops(), 0u);
}

TEST_F(NetFixture, PerFlowOrderingPreserved)
{
    std::vector<std::int64_t> got;
    net.setHandler(9, [&](const noc::Packet &p) {
        got.push_back(p.payload[0]);
    });
    for (std::int64_t i = 0; i < 20; ++i) {
        auto p = makePacket(0, 9);
        p.payload[0] = i;
        net.send(p);
    }
    eq.runUntil();
    ASSERT_EQ(got.size(), 20u);
    for (std::int64_t i = 0; i < 20; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_F(NetFixture, LinkContentionSerializes)
{
    // Two packets injected the same tick over the same first link:
    // the second must arrive exactly one cycle later.
    std::vector<sim::Tick> arrivals;
    net.setHandler(3, [&](const noc::Packet &) {
        arrivals.push_back(eq.now());
    });
    net.send(makePacket(0, 3));
    net.send(makePacket(0, 3));
    eq.runUntil();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[1], arrivals[0] + 1);
}

TEST_F(NetFixture, DifferentPlanesDoNotContend)
{
    std::vector<sim::Tick> arrivals;
    net.setHandler(3, [&](const noc::Packet &) {
        arrivals.push_back(eq.now());
    });
    net.send(makePacket(0, 3, noc::Plane::Service));
    net.send(makePacket(0, 3, noc::Plane::Dma0));
    eq.runUntil();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], arrivals[1]); // independent planes
}

TEST_F(NetFixture, CrossTrafficDelaysSharedLink)
{
    // 0->2 and 1->2 share the link 1->2 (XY routing goes east along
    // row 0); the packets must serialize on it.
    std::vector<sim::Tick> arrivals;
    net.setHandler(2, [&](const noc::Packet &) {
        arrivals.push_back(eq.now());
    });
    net.send(makePacket(0, 2));
    net.send(makePacket(1, 2));
    eq.runUntil();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_NE(arrivals[0], arrivals[1]);
}

TEST_F(NetFixture, SequenceNumbersAreUniqueAndMonotonic)
{
    auto s1 = net.send(makePacket(0, 1));
    auto s2 = net.send(makePacket(2, 3));
    EXPECT_LT(s1, s2);
}

TEST_F(NetFixture, ResetStatsClearsCounters)
{
    net.setHandler(1, [](const noc::Packet &) {});
    net.send(makePacket(0, 1));
    eq.runUntil();
    net.resetStats();
    EXPECT_EQ(net.packetsSent(), 0u);
    EXPECT_EQ(net.packetsDelivered(), 0u);
    EXPECT_EQ(net.totalHops(), 0u);
    EXPECT_EQ(net.latency().count(), 0u);
}

TEST_F(NetFixture, MissingHandlerDropsSilently)
{
    net.send(makePacket(0, 7));
    EXPECT_NO_THROW(eq.runUntil());
    EXPECT_EQ(net.packetsDelivered(), 1u); // counted, nothing to invoke
}

TEST_F(NetFixture, OutOfRangeEndpointsPanic)
{
    EXPECT_THROW(net.send(makePacket(0, 99)), sim::PanicError);
}

TEST(Network, WrappedTopologyRoutesShortWay)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(5, 5, true));
    sim::Tick arrival = 0;
    net.setHandler(4, [&](const noc::Packet &) { arrival = eq.now(); });
    noc::Packet p;
    p.src = 0;
    p.dst = 4; // one hop west via wrap
    net.send(p);
    eq.runUntil();
    EXPECT_EQ(arrival, 2u); // 1 hop + ejection
}

TEST(Network, HopLatencyScalesDelivery)
{
    sim::EventQueue eq;
    noc::Network net(eq, noc::Topology(4, 1, false), /*hopLatency=*/3);
    sim::Tick arrival = 0;
    net.setHandler(3, [&](const noc::Packet &) { arrival = eq.now(); });
    noc::Packet p;
    p.src = 0;
    p.dst = 3;
    net.send(p);
    eq.runUntil();
    EXPECT_EQ(arrival, 12u); // (3 hops + eject) * 3 cycles
}

TEST(Network, MsgTypeNames)
{
    EXPECT_STREQ(noc::msgTypeName(noc::MsgType::CoinStatus),
                 "CoinStatus");
    EXPECT_STREQ(noc::msgTypeName(noc::MsgType::CoinUpdate),
                 "CoinUpdate");
    EXPECT_STREQ(noc::msgTypeName(noc::MsgType::RegWrite), "RegWrite");
}

} // namespace
