/**
 * @file
 * Cross-plane accounting reconciliation: the NoC probe (NocTrace),
 * the network's own counters, the fault plane's per-cause statistics,
 * and the flight recorder's journal must all agree packet for packet
 * under mesh partitions, outages, and rate faults. Every discarded
 * packet has exactly one cause, and every observer counts it exactly
 * once — a drift between the planes would mean some observer is
 * double-counting or blind.
 */

#include <cstdint>
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "fault/chaos.hpp"
#include "record/recorder.hpp"
#include "trace/metrics.hpp"
#include "trace/noc_trace.hpp"

namespace {

using namespace blitz;

/** A bench_chaos-shaped trial with every observer plane attached. */
struct ObservedTrial
{
    trace::Registry reg;
    std::unique_ptr<fault::ChaosCluster> cluster;
    std::unique_ptr<trace::NocTrace> probe;
    record::FlightRecorder rec;

    ObservedTrial(int d, const fault::FaultConfig &fc,
                  std::uint64_t seed)
    {
        fault::ChaosConfig cc;
        cc.width = d;
        cc.height = d;
        cc.seedBase = seed;
        cc.fault = fc;
        cc.fault.seed = seed;
        cc.auditPeriod = 4'096;
        cluster = std::make_unique<fault::ChaosCluster>(cc);
        probe = std::make_unique<trace::NocTrace>(
            reg, cluster->net().linkCount(), /*hopLatency=*/1);
        cluster->net().setTrace(probe.get());
        cluster->attachRecorder(&rec);

        const auto n = static_cast<std::size_t>(d * d);
        for (std::size_t i = 0; i < n; ++i)
            cluster->setMax(i, 16);
        for (std::size_t i = 0; i < n / 4; ++i)
            cluster->setHas(i, 32);
        cluster->sealProvision();
        cluster->startAll();
    }

    /** Recorded events of @p kind (optionally at one fault site). */
    std::uint64_t
    recorded(record::RecordKind kind, int site = -1) const
    {
        std::uint64_t count = 0;
        for (std::size_t i = 0; i < rec.size(); ++i) {
            const record::Record &r = rec.at(i);
            if (r.kind != kind)
                continue;
            if (site >= 0 && r.flag != static_cast<std::uint8_t>(site))
                continue;
            ++count;
        }
        return count;
    }
};

TEST(NocTracePartition, PartitionOnlyDropsReconcileExactly)
{
    // No rate faults, no outages: every discard is a severed-link
    // discard, so all four planes must report the same number.
    fault::FaultConfig fc;
    noc::Topology topo(4, 4, false);
    fc.partitions.push_back(
        fault::columnPartition(topo, /*cutX=*/1, 1'000, 20'000));

    ObservedTrial t(4, fc, /*seed=*/7);
    t.cluster->eq().runUntil(30'000);

    const auto &stats = t.cluster->plane().stats();
    EXPECT_EQ(stats.drops, 0u);
    EXPECT_EQ(stats.outageDrops, 0u);
    EXPECT_GT(stats.partitionDrops, 0u)
        << "the partition window never cut live traffic";
    EXPECT_EQ(t.cluster->net().packetsDropped(), stats.partitionDrops);
    EXPECT_EQ(t.recorded(record::RecordKind::FaultDrop,
                         record::kSitePartition),
              stats.partitionDrops);

    // The probe's counters surface through the registry snapshot.
    t.reg.sample(t.cluster->eq().now());
    const auto &schema = t.reg.schema();
    const auto &row = t.reg.snapshots().back();
    for (std::size_t i = 0; i < schema.size(); ++i) {
        if (schema[i].name == "noc.dropped") {
            EXPECT_EQ(row.values[i],
                      static_cast<double>(stats.partitionDrops));
        }
        if (schema[i].name == "noc.delivered") {
            EXPECT_EQ(row.values[i],
                      static_cast<double>(
                          t.cluster->net().packetsDelivered()));
        }
    }
}

TEST(NocTracePartition, MixedFaultsReconcileAcrossAllPlanes)
{
    // Partition + crash windows + rate drops/delays/duplicates all at
    // once: the per-cause fault statistics must sum to the network's
    // drop counter, and the recorder must journal each cause at its
    // site exactly as often as the plane counted it.
    fault::FaultConfig fc;
    fc.coinTrafficOnly = true;
    fc.base.drop = 0.05;
    fc.base.delay = 0.05;
    fc.base.duplicate = 0.02;
    noc::Topology topo(4, 4, false);
    fc.partitions.push_back(
        fault::columnPartition(topo, /*cutX=*/1, 2'000, 12'000));
    fc.outages.push_back({/*node=*/5, 3'000, 12'000, /*freeze=*/false});

    ObservedTrial t(4, fc, /*seed=*/11);
    t.cluster->eq().runUntil(40'000);

    const auto &stats = t.cluster->plane().stats();
    EXPECT_GT(stats.drops, 0u);
    EXPECT_GT(stats.partitionDrops, 0u);
    EXPECT_GT(stats.outageDrops, 0u);
    EXPECT_GT(stats.delays, 0u);

    const std::uint64_t totalDrops =
        stats.drops + stats.outageDrops + stats.partitionDrops;
    EXPECT_EQ(t.cluster->net().packetsDropped(), totalDrops);

    // Per-cause journal counts match the plane's own statistics.
    using record::RecordKind;
    EXPECT_EQ(t.recorded(RecordKind::FaultDrop, record::kSiteInject),
              stats.drops);
    EXPECT_EQ(t.recorded(RecordKind::FaultDrop, record::kSiteOutage),
              stats.outageDrops);
    EXPECT_EQ(t.recorded(RecordKind::FaultDrop, record::kSitePartition),
              stats.partitionDrops);
    EXPECT_EQ(t.recorded(RecordKind::FaultDelay), stats.delays);
    EXPECT_EQ(t.recorded(RecordKind::FaultDuplicate),
              stats.duplicates);
    EXPECT_EQ(t.recorded(RecordKind::NocDeliver),
              t.cluster->net().packetsDelivered());

    // The probe saw the same world: drops and deliveries match the
    // network, and its per-link hop counts sum to the network total.
    t.reg.sample(t.cluster->eq().now());
    const auto &schema = t.reg.schema();
    const auto &row = t.reg.snapshots().back();
    for (std::size_t i = 0; i < schema.size(); ++i) {
        if (schema[i].name == "noc.dropped") {
            EXPECT_EQ(row.values[i], static_cast<double>(totalDrops));
        }
        if (schema[i].name == "noc.delivered") {
            EXPECT_EQ(row.values[i],
                      static_cast<double>(
                          t.cluster->net().packetsDelivered()));
        }
        if (schema[i].name == "noc.hops") {
            EXPECT_EQ(row.values[i],
                      static_cast<double>(t.cluster->net().totalHops()));
        }
    }
    const auto &hops = t.probe->linkHops();
    EXPECT_EQ(std::accumulate(hops.begin(), hops.end(),
                              std::uint64_t{0}),
              t.cluster->net().totalHops());
}

} // namespace
