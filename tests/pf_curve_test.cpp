/**
 * @file
 * Tests for the power/frequency characterization curves (Fig. 13).
 */

#include <gtest/gtest.h>

#include "power/pf_curve.hpp"
#include "sim/logging.hpp"

namespace {

using namespace blitz;
using power::OpPoint;
using power::PfCurve;

TEST(PfCurve, CatalogPeaksMatchPaperBudgetFractions)
{
    using namespace power::catalog;
    // 3x3 AV SoC: 3 FFT + 2 Viterbi + 1 NVDLA sum to 400 mW, so the
    // paper's 120/60 mW budgets are the 30%/15% points.
    double av = 3 * fft().pMax() + 2 * viterbi().pMax() + nvdla().pMax();
    EXPECT_NEAR(av, 400.0, 1e-9);
    EXPECT_NEAR(120.0 / av, 0.30, 1e-9);
    // 4x4 vision SoC: 4 GEMM + 5 Conv2D + 4 Vision ~ 1355 mW; the
    // 450/900 mW budgets are the ~33%/66% points.
    double vis = 4 * gemm().pMax() + 5 * conv2d().pMax() +
                 4 * vision().pMax();
    EXPECT_NEAR(vis, 1355.0, 1e-9);
    EXPECT_NEAR(450.0 / vis, 0.33, 0.01);
}

TEST(PfCurve, PowerIsMonotoneInFrequency)
{
    for (const PfCurve *c : power::catalog::all()) {
        double prev = -1.0;
        for (double f = 0.0; f <= c->fMax(); f += c->fMax() / 50.0) {
            double p = c->powerAt(f);
            EXPECT_GE(p, prev) << c->name() << " at " << f;
            prev = p;
        }
    }
}

TEST(PfCurve, FreqForPowerInvertsPowerAt)
{
    for (const PfCurve *c : power::catalog::all()) {
        for (double f = 0.0; f <= c->fMax(); f += c->fMax() / 20.0) {
            double p = c->powerAt(f);
            EXPECT_NEAR(c->freqForPower(p), f, c->fMax() * 1e-9)
                << c->name();
        }
    }
}

TEST(PfCurve, BudgetBeyondPeakSaturatesAtFmax)
{
    const PfCurve &c = power::catalog::fft();
    EXPECT_DOUBLE_EQ(c.freqForPower(c.pMax() * 10.0), c.fMax());
}

TEST(PfCurve, BudgetBelowIdleYieldsZeroFrequency)
{
    const PfCurve &c = power::catalog::nvdla();
    EXPECT_DOUBLE_EQ(c.freqForPower(c.pIdle() * 0.5), 0.0);
}

TEST(PfCurve, IdleIsSevenPointFiveTimesBelowPmin)
{
    // The paper's measurement: idle at minimum voltage with a crawling
    // clock saves 7.5x versus the lowest operating point.
    for (const PfCurve *c : power::catalog::all())
        EXPECT_NEAR(c->pMin() / c->pIdle(), 7.5, 1e-9) << c->name();
}

TEST(PfCurve, SubFminFrequencyScalingIsLinear)
{
    const PfCurve &c = power::catalog::gemm();
    double f_min = c.fMinCharacterized();
    double p_half = c.powerAt(f_min / 2.0);
    EXPECT_GT(p_half, c.pIdle());
    EXPECT_LT(p_half, c.pMin());
    // Exactly halfway between idle and Pmin by construction.
    EXPECT_NEAR(p_half, c.pIdle() + (c.pMin() - c.pIdle()) / 2.0, 1e-9);
}

TEST(PfCurve, VoltageRangesMatchCharacterization)
{
    using namespace power::catalog;
    EXPECT_NEAR(fft().points().front().voltage, 0.5, 1e-9);
    EXPECT_NEAR(fft().points().back().voltage, 1.0, 1e-9);
    EXPECT_NEAR(nvdla().points().front().voltage, 0.6, 1e-9);
    EXPECT_NEAR(gemm().points().back().voltage, 0.9, 1e-9);
}

TEST(PfCurve, VoltageForIsMonotone)
{
    const PfCurve &c = power::catalog::conv2d();
    double prev = 0.0;
    for (double f = 0.0; f <= c.fMax(); f += c.fMax() / 20.0) {
        double v = c.voltageFor(f);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_NEAR(c.voltageFor(c.fMax()), 0.9, 1e-9);
}

TEST(PfCurve, ByNameFindsAllAndRejectsUnknown)
{
    for (const PfCurve *c : power::catalog::all())
        EXPECT_EQ(&power::catalog::byName(c->name()), c);
    EXPECT_THROW(power::catalog::byName("TPU"), sim::FatalError);
}

TEST(PfCurve, ValidationRejectsBadCurves)
{
    EXPECT_THROW(PfCurve("empty", {}), sim::FatalError);
    EXPECT_THROW(PfCurve("nonmono",
                         {OpPoint{0.5, 100.0, 10.0},
                          OpPoint{0.6, 200.0, 5.0}}),
                 sim::FatalError);
    EXPECT_THROW(PfCurve("badidle", {OpPoint{0.5, 100.0, 10.0}}, 0.0),
                 sim::FatalError);
}

TEST(PfCurve, OutOfRangeFrequencyPanics)
{
    const PfCurve &c = power::catalog::fft();
    EXPECT_THROW(c.powerAt(-1.0), sim::PanicError);
    EXPECT_THROW(c.powerAt(c.fMax() * 2.0), sim::PanicError);
}

TEST(PfCurve, NvdlaIsTheBigTile)
{
    // Relative magnitudes drive the RP-vs-AP result; NVDLA dominates.
    using namespace power::catalog;
    EXPECT_GT(nvdla().pMax(), 3.0 * fft().pMax());
    EXPECT_GT(fft().pMax(), viterbi().pMax());
}

} // namespace
