/**
 * @file
 * Tests for the random activity-phase generator.
 */

#include <gtest/gtest.h>

#include "workload/phase_gen.hpp"

namespace {

using namespace blitz;
using workload::PhaseGenConfig;
using workload::PhaseGenerator;

PhaseGenConfig
config(sim::Tick mean)
{
    PhaseGenConfig cfg;
    cfg.meanPhaseTicks = mean;
    return cfg;
}

TEST(PhaseGen, EventsAreSorted)
{
    PhaseGenerator gen(8, config(1000), 1);
    auto events = gen.generate(100000);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].when, events[i - 1].when);
}

TEST(PhaseGen, PerTileEventsAlternate)
{
    PhaseGenerator gen(4, config(500), 2);
    auto events = gen.generate(50000);
    std::vector<bool> state(4);
    for (std::size_t i = 0; i < 4; ++i)
        state[i] = gen.initialActive()[i];
    for (const auto &e : events) {
        EXPECT_NE(e.startsExecution, state[e.tile])
            << "non-alternating event for tile " << e.tile;
        state[e.tile] = e.startsExecution;
    }
}

TEST(PhaseGen, MeanIntervalApproximatesTw)
{
    const sim::Tick tw = 2000;
    PhaseGenerator gen(16, config(tw), 3);
    auto events = gen.generate(2000000);
    // 16 tiles, horizon/Tw phases each: expect ~16 * horizon / Tw.
    double expected = 16.0 * 2000000.0 / static_cast<double>(tw);
    EXPECT_NEAR(static_cast<double>(events.size()), expected,
                expected * 0.15);
}

TEST(PhaseGen, SocLevelChangeIntervalIsTwOverN)
{
    PhaseGenerator gen(20, config(10000), 4);
    EXPECT_EQ(gen.socChangeInterval(), 500u);
}

TEST(PhaseGen, DeterministicForSeed)
{
    PhaseGenerator a(8, config(1000), 77);
    PhaseGenerator b(8, config(1000), 77);
    auto ea = a.generate(50000);
    auto eb = b.generate(50000);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].when, eb[i].when);
        EXPECT_EQ(ea[i].tile, eb[i].tile);
        EXPECT_EQ(ea[i].startsExecution, eb[i].startsExecution);
    }
}

TEST(PhaseGen, InitialActiveFractionRoughlyHolds)
{
    PhaseGenConfig cfg = config(1000);
    cfg.initialActiveFraction = 0.8;
    PhaseGenerator gen(1000, cfg, 5);
    int active = 0;
    for (bool a : gen.initialActive())
        active += a ? 1 : 0;
    EXPECT_NEAR(active, 800, 60);
}

TEST(PhaseGen, InvalidConfigFatal)
{
    EXPECT_THROW(PhaseGenerator(0, config(100), 1), sim::FatalError);
    EXPECT_THROW(PhaseGenerator(4, config(0), 1), sim::FatalError);
}

} // namespace
