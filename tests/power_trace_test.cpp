/**
 * @file
 * Tests for the sampled power trace and its metrics.
 */

#include <gtest/gtest.h>

#include "power/power_trace.hpp"
#include "sim/logging.hpp"

namespace {

using namespace blitz;
using power::PowerTrace;

TEST(PowerTrace, AverageIsTimeWeighted)
{
    PowerTrace trace(1, 100.0);
    trace.record(0, {10.0});
    trace.record(100, {30.0}); // 10 mW held for 100 ticks
    trace.record(300, {30.0}); // 30 mW held for 200 ticks
    EXPECT_NEAR(trace.averageTotalMw(),
                (10.0 * 100 + 30.0 * 200) / 300.0, 1e-9);
}

TEST(PowerTrace, PeakAndUtilization)
{
    PowerTrace trace(2, 50.0);
    trace.record(0, {10.0, 10.0});
    trace.record(10, {20.0, 25.0});
    trace.record(20, {5.0, 5.0});
    EXPECT_DOUBLE_EQ(trace.peakTotalMw(), 45.0);
    EXPECT_GT(trace.budgetUtilization(), 0.0);
    EXPECT_LT(trace.budgetUtilization(), 1.0);
}

TEST(PowerTrace, EnergyIntegral)
{
    PowerTrace trace(1, 100.0);
    trace.record(0, {100.0});
    trace.record(800, {100.0}); // 100 mW for 1 us = 100 nJ
    EXPECT_NEAR(trace.energyNj(), 100.0, 1e-9);
}

TEST(PowerTrace, CapViolationFraction)
{
    PowerTrace trace(1, 100.0);
    trace.record(0, {90.0});
    trace.record(1, {103.0});  // beyond 2% tolerance
    trace.record(2, {101.0});  // inside tolerance
    trace.record(3, {150.0});  // beyond
    EXPECT_DOUBLE_EQ(trace.capViolationFraction(0.02), 0.5);
    EXPECT_DOUBLE_EQ(trace.capViolationFraction(0.60), 0.0);
}

TEST(PowerTrace, CsvShape)
{
    PowerTrace trace(2, 10.0);
    trace.record(0, {1.0, 2.0});
    trace.record(800, {3.0, 4.0});
    std::string csv = trace.toCsv({"A", "B"});
    EXPECT_NE(csv.find("tick,us,A,B,total"), std::string::npos);
    EXPECT_NE(csv.find("800,1,3,4,7"), std::string::npos);
}

TEST(PowerTrace, EmptyAndSingleSampleEdges)
{
    PowerTrace trace(1, 10.0);
    EXPECT_DOUBLE_EQ(trace.averageTotalMw(), 0.0);
    EXPECT_DOUBLE_EQ(trace.peakTotalMw(), 0.0);
    EXPECT_DOUBLE_EQ(trace.energyNj(), 0.0);
    EXPECT_DOUBLE_EQ(trace.capViolationFraction(), 0.0);
    trace.record(5, {7.0});
    EXPECT_DOUBLE_EQ(trace.averageTotalMw(), 7.0);
}

TEST(PowerTrace, WrongWidthPanics)
{
    PowerTrace trace(2, 10.0);
    EXPECT_THROW(trace.record(0, {1.0}), sim::PanicError);
    trace.record(0, {1.0, 2.0});
    EXPECT_THROW(trace.toCsv({"only-one"}), sim::PanicError);
}

TEST(PowerTrace, NonPositiveBudgetFatal)
{
    EXPECT_THROW(PowerTrace(1, 0.0), sim::FatalError);
}

} // namespace
