/**
 * @file
 * Introspection-plane unit and property tests: the superstep profiler's
 * counters against kernel ground truth, the Perfetto counter-track
 * export, the deterministic/wallclock split of HealthReport, and the
 * report's JSON round-trip / diff / fold-mode absorb contracts.
 *
 * Suite names start with "Prof" so the tsan preset's name filter picks
 * the whole file up alongside the shard/sweep suites — the profiler's
 * probe slots are written from parallel shard phases, so the barrier
 * publication in ShardGroup::attachProbe is exactly the kind of
 * hand-off tsan should watch.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"
#include "trace/health.hpp"
#include "trace/prof.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace blitz;

/** Self-rescheduling sender: steady NoC traffic pinned to its node. */
struct Sender
{
    noc::Network *net;
    sim::EventQueue *eq;
    std::uint32_t state;
    noc::NodeId id;

    void
    operator()()
    {
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        noc::Packet p;
        p.src = id;
        p.dst = static_cast<noc::NodeId>(state %
                                         net->topology().size());
        p.type = noc::MsgType::Generic;
        net->send(p);
        eq->scheduleIn(32, *this);
    }
};

/** A d x d sharded mesh under steady traffic, profiler attached. */
struct ProfiledMesh
{
    sim::EventQueue eq;
    sim::ShardGroup group;
    noc::Network net;
    trace::SuperstepProfiler prof;
    std::uint64_t executed = 0;

    ProfiledMesh(int d, std::uint32_t shards,
                 trace::SuperstepProfiler::Options opts = {})
        : group(eq, shards,
                sim::columnBands(static_cast<std::uint32_t>(d),
                                 static_cast<std::uint32_t>(d), shards)),
          net(eq, noc::Topology(d, d, false)), prof(opts)
    {
        net.enableSharding(group);
        const auto n = static_cast<std::uint32_t>(d * d);
        for (noc::NodeId id = 0; id < n; ++id)
            net.setHandler(id, [](const noc::Packet &) {});
        prof.attach(group);
        for (noc::NodeId id = 0; id < n; ++id) {
            Sender s{&net, &eq, 0x9e3779b9u + id, id};
            eq.scheduleAtNode(id, 1 + id % 29, s);
        }
    }

    void run(sim::Tick until) { executed += eq.runUntil(until); }
};

TEST(ProfPlane, CountersMatchKernelGroundTruthAtEveryShardCount)
{
    for (std::uint32_t shards : {2u, 4u}) {
        ProfiledMesh m(6, shards);
        m.run(30'000);
        const sim::ShardProbe &p = m.prof.probe();

        // Every executed event ran in exactly one leaf phase, and this
        // workload schedules nothing on the serial lane, so the
        // per-shard executed counters partition the kernel's total.
        std::uint64_t executed = 0;
        for (const sim::ShardProbe::Shard &s : p.shards)
            executed += s.executed;
        EXPECT_EQ(executed, m.executed) << "shards=" << shards;
        EXPECT_EQ(executed, m.eq.totalExecuted()) << "shards=" << shards;

        // The mailbox matrix is the cross-shard ledger: its total is
        // the group's crossEvents counter, and the diagonal is empty
        // (an intra-shard event never crosses a mailbox).
        std::uint64_t crossed = 0;
        for (std::uint32_t src = 0; src < shards; ++src)
            for (std::uint32_t dst = 0; dst < shards; ++dst) {
                const std::uint64_t c =
                    p.mailbox[static_cast<std::size_t>(src) * shards +
                              dst];
                if (src == dst)
                    EXPECT_EQ(c, 0u) << "diagonal " << src;
                crossed += c;
            }
        EXPECT_EQ(crossed, m.group.crossEvents()) << "shards=" << shards;
        EXPECT_GT(crossed, 0u) << "no boundary traffic";

        // One probe superstep per kernel epoch; every superstep with
        // leaf work went either through the inline fast path or a
        // barrier (serial-only supersteps, the third case, need serial
        // events this workload does not schedule).
        EXPECT_EQ(p.supersteps, m.group.epochs()) << "shards=" << shards;
        EXPECT_EQ(p.fastPath + p.barriers, p.supersteps)
            << "shards=" << shards;

        EXPECT_GE(m.prof.imbalance(), 1.0);
    }
}

TEST(ProfPlane, SampleRowsAreCumulativeAndBounded)
{
    trace::SuperstepProfiler::Options opts;
    opts.sampleStride = 4;
    opts.maxSamples = 16; // force the in-place stride-doubling path
    ProfiledMesh m(6, 4, opts);
    m.run(40'000);
    const sim::ShardProbe &p = m.prof.probe();

    ASSERT_GT(p.rows, 0u);
    EXPECT_LE(p.rows, 16u);
    EXPECT_GT(p.stride, 4u) << "compaction never doubled the stride";
    for (std::uint32_t r = 1; r < p.rows; ++r) {
        EXPECT_GT(p.sampleTick[r], p.sampleTick[r - 1]);
        for (std::uint32_t s = 0; s < 4; ++s) {
            const auto &cur = p.samples[r * 4 + s];
            const auto &prev = p.samples[(r - 1) * 4 + s];
            EXPECT_GE(cur.execNs, prev.execNs);
            EXPECT_GE(cur.executed, prev.executed);
            EXPECT_GE(cur.inbox, prev.inbox);
        }
    }
    // The final cumulative row never exceeds the live counters.
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_LE(p.samples[(p.rows - 1) * 4 + s].executed,
                  p.shards[s].executed);
}

TEST(ProfPlane, EmitCounterTracksRendersPerShardSeries)
{
    ProfiledMesh m(6, 2);
    m.run(30'000);

    trace::Tracer tracer;
    m.prof.emitCounterTracks(tracer);
    // Four tracks per shard (exec_ms / barrier_ms / events / inbox).
    EXPECT_EQ(tracer.trackCount(), 8u);
    EXPECT_GT(tracer.eventCount(), 0u);

    std::ostringstream os;
    tracer.writeJson(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"prof/shard0.exec_ms\""), std::string::npos);
    EXPECT_NE(doc.find("\"prof/shard1.events\""), std::string::npos);
    EXPECT_NE(doc.find("\"prof/shard1.inbox\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
}

TEST(ProfPlane, FillHealthSplitsDeterministicFromWallclock)
{
    auto runOnce = [](trace::HealthReport &report) {
        ProfiledMesh m(6, 4);
        m.run(30'000);
        m.prof.fillHealth(report);
    };
    trace::HealthReport a;
    trace::HealthReport b;
    runOnce(a);
    runOnce(b);

    // Outcome counters are a pure function of (workload, partition):
    // two identical runs agree key for key — including the engine
    // gauges — while wall-clock totals land in the other section.
    EXPECT_TRUE(trace::HealthReport::diff(a, b).empty());
    ASSERT_NE(a.findDet("prof.supersteps"), nullptr);
    ASSERT_NE(a.findDet("prof/shard0.events"), nullptr);
    ASSERT_NE(a.findDet("queue/shard0.depth_hwm"), nullptr);
    ASSERT_NE(a.findDet("arena/shard0.used_hwm_bytes"), nullptr);
    EXPECT_EQ(a.findDet("prof.exec_ms"), nullptr)
        << "wall-clock leaked into the deterministic section";
    ASSERT_NE(a.findWall("prof.exec_ms"), nullptr);
    ASSERT_NE(a.findWall("prof.imbalance"), nullptr);
    EXPECT_GE(*a.findWall("prof.imbalance"), 1.0);
    EXPECT_GT(*a.findDet("prof.supersteps"), 0.0);
}

TEST(ProfPlane, DetachedProbeLeavesNoSlots)
{
    ProfiledMesh m(4, 2);
    m.prof.detach();
    EXPECT_FALSE(m.prof.attached());
    m.run(10'000);
    const sim::ShardProbe &p = m.prof.probe();
    EXPECT_EQ(p.supersteps, 0u);
    EXPECT_GT(m.group.epochs(), 0u);
    // Detaching twice (and destroying detached) stays safe.
    m.prof.detach();
}

// ------------------------------------------------------- health report

TEST(ProfHealth, JsonRoundTripsThroughParse)
{
    trace::HealthReport r;
    r.setRun("unit \"quoted\" run");
    r.bumpDet("coin.total", 1234);
    r.maxDet("queue.depth_hwm", 77);
    r.setDet("exact", 0.125);
    r.bumpWall("prof.exec_ms", 12.5);
    r.setWall("sweep.utilization", 0.75);

    std::ostringstream os;
    r.writeJson(os);

    trace::HealthReport back;
    std::istringstream is(os.str());
    ASSERT_TRUE(back.parse(is));
    EXPECT_EQ(back.run(), "unit \"quoted\" run");
    ASSERT_NE(back.findDet("coin.total"), nullptr);
    EXPECT_EQ(*back.findDet("coin.total"), 1234.0);
    EXPECT_EQ(*back.findDet("queue.depth_hwm"), 77.0);
    EXPECT_EQ(*back.findDet("exact"), 0.125);
    EXPECT_EQ(*back.findWall("prof.exec_ms"), 12.5);
    EXPECT_EQ(*back.findWall("sweep.utilization"), 0.75);
    EXPECT_TRUE(trace::HealthReport::diff(r, back).empty());
}

TEST(ProfHealth, ParseRejectsMalformedDocumentsAndClears)
{
    trace::HealthReport r;
    r.bumpDet("stale", 1);
    std::istringstream bad(
        "{\"blitzHealth\":1,\"run\":\"x\",\"deterministic\":{\"a\":");
    EXPECT_FALSE(r.parse(bad));
    EXPECT_EQ(r.findDet("stale"), nullptr) << "failed parse kept state";
    EXPECT_EQ(r.findDet("a"), nullptr);

    std::istringstream wrongMagic("{\"blitzHealth\":2}");
    EXPECT_FALSE(r.parse(wrongMagic));
    std::istringstream notJson("hello");
    EXPECT_FALSE(r.parse(notJson));
}

TEST(ProfHealth, DiffComparesOnlyTheDeterministicSection)
{
    trace::HealthReport a;
    trace::HealthReport b;
    a.bumpDet("same", 5);
    b.bumpDet("same", 5);
    a.bumpDet("changed", 1);
    b.bumpDet("changed", 2);
    a.bumpDet("only_a", 9);
    b.bumpDet("only_b", 10);
    a.bumpWall("wall", 100);
    b.bumpWall("wall", 999); // wall-clock never enters the verdict

    auto d = trace::HealthReport::diff(a, b);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_EQ(d[0].key, "changed");
    EXPECT_TRUE(d[0].inA && d[0].inB);
    EXPECT_EQ(d[1].key, "only_a");
    EXPECT_FALSE(d[1].inB);
    EXPECT_EQ(d[2].key, "only_b");
    EXPECT_FALSE(d[2].inA);
}

TEST(ProfHealth, AbsorbReplaysEntriesWithTheirFoldModes)
{
    auto trial = [](double events, double hwm) {
        trace::HealthReport r;
        r.bumpDet("events", events);     // sums across trials
        r.maxDet("depth_hwm", hwm);      // max across trials
        r.setDet("shards", 4);           // idempotent across trials
        r.bumpWall("exec_ms", events / 10.0);
        return r;
    };
    trace::HealthReport acc;
    acc.setRun("fold");
    acc.absorb(trial(100, 7));
    acc.absorb(trial(50, 31));
    acc.absorb(trial(25, 9));

    EXPECT_EQ(*acc.findDet("events"), 175.0);
    EXPECT_EQ(*acc.findDet("depth_hwm"), 31.0);
    EXPECT_EQ(*acc.findDet("shards"), 4.0);
    EXPECT_EQ(*acc.findWall("exec_ms"), 17.5);
    EXPECT_EQ(acc.run(), "fold");

    // An empty accumulator adopts the other report's run label.
    trace::HealthReport fresh;
    fresh.absorb(acc);
    EXPECT_EQ(fresh.run(), "fold");
    EXPECT_EQ(*fresh.findDet("events"), 175.0);
}

TEST(ProfHealth, QueueAndArenaGaugesReportHighWaterMarks)
{
    sim::EventQueue eq;
    struct Tick
    {
        sim::EventQueue *eq;
        void
        operator()() const
        {
            if (eq->now() < 5'000)
                eq->scheduleIn(1, *this);
        }
    };
    for (int i = 0; i < 32; ++i)
        eq.schedule(1 + i % 7, Tick{&eq});
    eq.runUntil(10'000);

    trace::HealthReport r;
    trace::fillQueueHealth(r, eq);
    ASSERT_NE(r.findDet("queue.executed"), nullptr);
    ASSERT_NE(r.findDet("queue.depth_hwm"), nullptr);
    EXPECT_EQ(*r.findDet("queue.executed"),
              static_cast<double>(eq.totalExecuted()));
    EXPECT_GT(*r.findDet("queue.depth_hwm"), 0.0);
    EXPECT_GE(*r.findDet("queue.scheduled"),
              *r.findDet("queue.executed"));
}

} // namespace
