/**
 * @file
 * Unit tests of the flight-recorder core (chunked append, ring
 * recycling, lane absorption, lockstep checking, file round-trip) and
 * of the per-coin provenance ledger (lineage threading through mint,
 * transfer, crash, burn, and remint, plus the causal gap report).
 */

#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "record/provenance.hpp"
#include "record/recorder.hpp"

namespace {

using namespace blitz;
using record::FlightRecorder;
using record::ProvenanceLedger;
using record::Record;
using record::RecordKind;

Record
numbered(std::uint64_t i)
{
    Record r;
    r.tick = i;
    r.kind = RecordKind::Transfer;
    r.p0 = static_cast<std::int64_t>(i);
    r.p1 = static_cast<std::int64_t>(i * 3);
    return r;
}

// ------------------------------------------------------------ recorder

TEST(FlightRecorder, AppendsAcrossChunkBoundaries)
{
    FlightRecorder::Config cfg;
    cfg.chunkRecords = 8;
    FlightRecorder rec(cfg);
    for (std::uint64_t i = 0; i < 37; ++i)
        rec.append(numbered(i));
    ASSERT_EQ(rec.size(), 37u);
    EXPECT_EQ(rec.totalAppended(), 37u);
    EXPECT_EQ(rec.droppedOldest(), 0u);
    for (std::uint64_t i = 0; i < 37; ++i)
        EXPECT_EQ(rec.at(i).tick, i);
}

TEST(FlightRecorder, RingModeRecyclesOldestWholeChunks)
{
    FlightRecorder::Config cfg;
    cfg.chunkRecords = 4;
    cfg.maxChunks = 3; // retains at most 12 records
    FlightRecorder rec(cfg);
    for (std::uint64_t i = 0; i < 40; ++i)
        rec.append(numbered(i));
    EXPECT_EQ(rec.totalAppended(), 40u);
    EXPECT_LE(rec.size(), 12u);
    EXPECT_EQ(rec.totalAppended(),
              rec.droppedOldest() + rec.size());
    EXPECT_EQ(rec.baseIndex(), rec.droppedOldest());
    // The retained window is the contiguous tail of the stream.
    for (std::size_t i = 0; i < rec.size(); ++i)
        EXPECT_EQ(rec.at(i).tick, rec.baseIndex() + i);
}

TEST(FlightRecorder, AbsorbRestampsLanesInReplicationOrder)
{
    FlightRecorder a, b, merged;
    a.mint(10, 0, 16, 0, 0);
    b.mint(20, 1, 8, 1, 1);
    merged.absorb(a, 0);
    merged.absorb(b, 1);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged.at(0).lane, 0u);
    EXPECT_EQ(merged.at(1).lane, 1u);
    EXPECT_EQ(merged.at(1).tick, 20u);

    // Absorbing the same lanes in the same order reproduces the same
    // digest — the sweep-merge determinism contract.
    FlightRecorder again;
    again.absorb(a, 0);
    again.absorb(b, 1);
    EXPECT_EQ(merged.digest(), again.digest());

    // Order (and lane stamping) are part of the stream identity.
    FlightRecorder swapped;
    swapped.absorb(b, 0);
    swapped.absorb(a, 1);
    EXPECT_NE(merged.digest(), swapped.digest());
}

TEST(FlightRecorder, DigestIsOrderAndPayloadSensitive)
{
    FlightRecorder a, b;
    a.transfer(5, 0, 1, 3, 1);
    b.transfer(5, 0, 1, 3, 1);
    EXPECT_EQ(a.digest(), b.digest());
    b.mutableAt(0).p2 ^= 1;
    EXPECT_NE(a.digest(), b.digest());
}

TEST(FlightRecorder, LockstepLatchesTheFirstMismatch)
{
    FlightRecorder ref;
    for (std::uint64_t i = 0; i < 6; ++i)
        ref.append(numbered(i));

    FlightRecorder live;
    live.beginLockstep(&ref);
    for (std::uint64_t i = 0; i < 3; ++i)
        live.append(numbered(i));
    EXPECT_FALSE(live.diverged());

    Record wrong = numbered(3);
    wrong.p1 = -1;
    live.append(wrong);
    EXPECT_TRUE(live.diverged());
    EXPECT_EQ(live.divergedAt(), 3u);

    // The latch holds even if later records happen to match again.
    live.append(numbered(4));
    EXPECT_TRUE(live.diverged());
    EXPECT_EQ(live.divergedAt(), 3u);
}

TEST(FlightRecorder, LockstepFlagsAppendsPastTheReferenceEnd)
{
    FlightRecorder ref;
    ref.append(numbered(0));
    FlightRecorder live;
    live.beginLockstep(&ref);
    live.append(numbered(0));
    EXPECT_FALSE(live.diverged());
    live.append(numbered(1)); // the log has no record #1
    EXPECT_TRUE(live.diverged());
    EXPECT_EQ(live.divergedAt(), 1u);
}

TEST(FlightRecorder, FileRoundTripPreservesStreamAndHeader)
{
    FlightRecorder rec;
    rec.mint(0, 0, 16, 0, 0);
    rec.transfer(100, 0, 1, 4, 1);
    rec.pmActuation(200, 1, 787.5);
    record::LogHeader header{};
    header[0] = 0xfeedface;
    header[15] = 42;

    const std::string path =
        testing::TempDir() + "record_roundtrip.blzr";
    ASSERT_TRUE(rec.writeFile(path, header));

    FlightRecorder in;
    record::LogHeader got{};
    ASSERT_TRUE(FlightRecorder::readFile(path, in, &got));
    EXPECT_EQ(got[0], 0xfeedfaceu);
    EXPECT_EQ(got[15], 42u);
    ASSERT_EQ(in.size(), rec.size());
    EXPECT_EQ(in.digest(), rec.digest());
    EXPECT_EQ(in.at(2).p1, 787'500); // milli-MHz encoding survived

    std::remove(path.c_str());
    FlightRecorder missing;
    EXPECT_FALSE(FlightRecorder::readFile(path, missing, nullptr));
}

// ---------------------------------------------------------- provenance

TEST(Provenance, MintTransferThreadsLineagesFifo)
{
    ProvenanceLedger led(3);
    const std::uint64_t first = led.mint(0, 10, 0);
    const std::uint64_t second = led.mint(0, 5, 10);
    ASSERT_NE(first, ProvenanceLedger::kNoLineage);
    ASSERT_NE(second, first);
    EXPECT_EQ(led.held(0), 15);

    // FIFO: moving 12 coins drains all of lineage `first` and 2 of
    // `second`.
    led.transfer(0, 1, 12, /*xid=*/7, /*tick=*/20);
    EXPECT_EQ(led.held(0), 3);
    EXPECT_EQ(led.held(1), 12);
    const auto &h = led.history(first);
    ASSERT_EQ(h.size(), 2u);
    EXPECT_EQ(h[1].kind, record::ProvenanceHop::Kind::Transfer);
    EXPECT_EQ(h[1].from, 0u);
    EXPECT_EQ(h[1].to, 1u);
    EXPECT_EQ(h[1].amount, 10);
    EXPECT_EQ(h[1].xid, 7u);
    ASSERT_EQ(led.history(second).size(), 2u);
    EXPECT_EQ(led.history(second)[1].amount, 2);
}

TEST(Provenance, NegativeTransferReversesDirection)
{
    ProvenanceLedger led(2);
    led.mint(1, 8, 0);
    led.transfer(0, 1, -8, /*xid=*/1, /*tick=*/5);
    EXPECT_EQ(led.held(0), 8);
    EXPECT_EQ(led.held(1), 0);
    EXPECT_EQ(led.unsourced(), 0);
}

TEST(Provenance, UntrackedMovementIsCountedNotCrashed)
{
    ProvenanceLedger led(2);
    led.transfer(0, 1, 4, /*xid=*/1, /*tick=*/5);
    EXPECT_EQ(led.unsourced(), 4);
}

TEST(Provenance, CrashThenRemintClosesTheLoopOldestFirst)
{
    ProvenanceLedger led(2);
    const std::uint64_t l0 = led.mint(0, 6, 0);
    const std::uint64_t l1 = led.mint(0, 4, 1);
    led.crash(0, /*tick=*/100);
    EXPECT_EQ(led.held(0), 0);
    EXPECT_EQ(led.lostOutstanding(), 10);
    EXPECT_EQ(led.lostLineages(),
              (std::vector<std::uint64_t>{l0, l1}));

    // The gap report names the causal chain, not just the count.
    const std::string gap = led.gapReport();
    EXPECT_NE(gap.find("crash"), std::string::npos);
    EXPECT_NE(gap.find("lineage"), std::string::npos);

    // A partial remint consumes the oldest lost lineage first.
    const auto touched = led.remint(1, 6, 200);
    EXPECT_EQ(touched.first, l0);
    EXPECT_EQ(touched.last, l0);
    EXPECT_EQ(led.lostOutstanding(), 4);
    EXPECT_EQ(led.lostLineages(), (std::vector<std::uint64_t>{l1}));
    const auto rest = led.remint(1, 4, 300);
    EXPECT_EQ(rest.first, l1);
    EXPECT_EQ(rest.last, l1);
    EXPECT_EQ(led.lostOutstanding(), 0);
    EXPECT_TRUE(led.lostLineages().empty());
    EXPECT_EQ(led.held(1), 10);
    EXPECT_EQ(led.gapReport(), "");

    const std::string chain = led.describeLineage(l0);
    EXPECT_NE(chain.find("mint"), std::string::npos);
    EXPECT_NE(chain.find("crash"), std::string::npos);
    EXPECT_NE(chain.find("remint"), std::string::npos);
}

TEST(Provenance, RemintRangeSpansConsumedLineages)
{
    ProvenanceLedger led(2);
    const std::uint64_t l0 = led.mint(0, 3, 0);
    const std::uint64_t l1 = led.mint(0, 2, 1);
    led.crash(0, /*tick=*/10);

    // One remint larger than the lost pool consumes both lost
    // lineages and mints the excess fresh; the reported span runs
    // from the oldest lost lineage to the fresh one, so the audit's
    // log line names every lineage the correction touched.
    const auto span = led.remint(1, 7, /*tick=*/20);
    EXPECT_EQ(span.first, l0);
    EXPECT_EQ(span.last, l1 + 1);
    EXPECT_EQ(led.lostOutstanding(), 0);
    EXPECT_EQ(led.held(1), 7);

    // With nothing lost, a remint is a plain fresh mint and still
    // reports its own (single-lineage) span.
    const auto fresh = led.remint(1, 2, /*tick=*/30);
    EXPECT_EQ(fresh.first, fresh.last);
    EXPECT_NE(fresh.first, ProvenanceLedger::kNoLineage);

    // A no-op remint reports the empty span.
    const auto none = led.remint(1, 0, /*tick=*/40);
    EXPECT_EQ(none.first, ProvenanceLedger::kNoLineage);
    EXPECT_EQ(none.last, ProvenanceLedger::kNoLineage);
}

TEST(Provenance, BurnDestroysFifoWithoutLosingTrack)
{
    ProvenanceLedger led(1);
    const std::uint64_t l0 = led.mint(0, 5, 0);
    led.burn(0, 3, 50);
    EXPECT_EQ(led.held(0), 2);
    EXPECT_EQ(led.lostOutstanding(), 0); // burns are deliberate
    const auto &h = led.history(l0);
    ASSERT_GE(h.size(), 2u);
    EXPECT_EQ(h.back().kind, record::ProvenanceHop::Kind::Burn);
    EXPECT_EQ(h.back().amount, 3);
}

} // namespace
