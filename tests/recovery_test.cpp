/**
 * @file
 * Exchange-recovery tests: each of the fault cases the hardened 1-way
 * protocol must survive — dropped CoinStatus, dropped CoinUpdate,
 * duplicated packets, and a crash mid-exchange — ends with the cluster
 * re-converged and the seeded coin total restored exactly (asserted
 * through the ledger audit).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "lossy_cluster.hpp"
#include "soc/pm_impl.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "trace/metrics.hpp"

namespace {

using namespace blitz;
using blitz::testing::LossyCluster;
using blitz::testing::lossyConfig;

constexpr int kStatus = static_cast<int>(noc::MsgType::CoinStatus);
constexpr int kUpdate = static_cast<int>(noc::MsgType::CoinUpdate);

/** Seed a 2-tile cluster with 16 coins parked on tile 0. */
void
seedPair(LossyCluster &c)
{
    c.unit(0).setMax(8);
    c.unit(1).setMax(8);
    c.unit(0).setHas(16);
    c.c.sealProvision();
    c.startAll();
}

TEST(Recovery, DroppedStatusResolvesAsNullExchange)
{
    // Every CoinStatus is destroyed: no rebalance can ever run, but
    // each timed-out exchange must be resolved cleanly through the
    // CoinRecover probe ("never served" -> delta 0), not abandoned.
    auto cfg = lossyConfig(2, 0.0);
    cfg.fault.messages[kStatus].drop = 1.0;
    LossyCluster c(cfg);
    seedPair(c);
    c.eq().runUntil(60000);
    EXPECT_GT(c.dropped(), 0u);
    EXPECT_EQ(c.unit(0).has(), 16); // nothing ever moved
    EXPECT_EQ(c.totalCoins(), 16);
    std::uint64_t resolved = c.unit(0).updatesRecovered() +
                             c.unit(1).updatesRecovered();
    EXPECT_GT(resolved, 0u) << "recover probes never resolved anything";
    EXPECT_EQ(c.unit(0).exchangesAbandoned(), 0u);
    EXPECT_EQ(c.unit(1).exchangesAbandoned(), 0u);
}

TEST(Recovery, DroppedUpdateDeltaIsReplayed)
{
    // Half the CoinUpdates vanish. The partner's half of each affected
    // exchange already ran, so conservation now depends on the
    // initiator recovering the delta from the partner's served log.
    auto cfg = lossyConfig(2, 0.0);
    cfg.fault.messages[kUpdate].drop = 0.5;
    LossyCluster c(cfg);
    seedPair(c);
    c.eq().runUntil(100000);
    EXPECT_GT(c.dropped(), 0u);
    std::uint64_t recovered = c.unit(0).updatesRecovered() +
                              c.unit(1).updatesRecovered();
    EXPECT_GT(recovered, 0u);
    // Drain the recovery tail, then audit: the total must close
    // exactly, and the pair must have equalized despite the losses.
    c.c.quiesce(70000);
    EXPECT_EQ(c.totalCoins(), 16);
    EXPECT_EQ(c.unit(0).has(), 8);
    EXPECT_EQ(c.unit(1).has(), 8);
}

TEST(Recovery, DuplicatedUpdateAppliesOnce)
{
    // Every CoinUpdate is delivered twice. Without the sequence
    // stamps the second copy would re-apply the delta and mint coins.
    auto cfg = lossyConfig(2, 0.0);
    cfg.fault.messages[kUpdate].duplicate = 1.0;
    LossyCluster c(cfg);
    seedPair(c);
    c.eq().runUntil(60000);
    std::uint64_t ignored = c.unit(0).duplicatesIgnored() +
                            c.unit(1).duplicatesIgnored();
    EXPECT_GT(ignored, 0u);
    c.c.quiesce();
    EXPECT_EQ(c.totalCoins(), 16);
    EXPECT_EQ(c.unit(0).has(), 8);
    EXPECT_EQ(c.unit(1).has(), 8);
}

TEST(Recovery, DuplicatedStatusServedFromLog)
{
    // Every CoinStatus is delivered twice. The partner must replay
    // the logged outcome for the second copy instead of running the
    // rebalance again (which would double-move coins).
    auto cfg = lossyConfig(2, 0.0);
    cfg.fault.messages[kStatus].duplicate = 1.0;
    LossyCluster c(cfg);
    seedPair(c);
    c.eq().runUntil(60000);
    std::uint64_t ignored = c.unit(0).duplicatesIgnored() +
                            c.unit(1).duplicatesIgnored();
    EXPECT_GT(ignored, 0u);
    c.c.quiesce();
    EXPECT_EQ(c.totalCoins(), 16);
    EXPECT_EQ(c.unit(0).has(), 8);
    EXPECT_EQ(c.unit(1).has(), 8);
}

TEST(Recovery, CorruptedPacketsAreDroppedAndRecovered)
{
    // Corruption flips payload bits; the CRC flag makes endpoints
    // discard the flit, so it degrades into loss — which the protocol
    // recovers — rather than into silently wrong deltas.
    auto cfg = lossyConfig(3, 0.0);
    cfg.fault.base.corrupt = 0.2;
    cfg.fault.coinTrafficOnly = true;
    LossyCluster c(cfg);
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.unit(i).setMax(maxes[i]);
    c.unit(4).setHas(95);
    c.c.sealProvision();
    c.startAll();
    c.eq().runUntil(150000);
    std::uint64_t crcDrops = 0;
    for (std::size_t i = 0; i < 9; ++i)
        crcDrops += c.unit(i).corruptedDropped();
    EXPECT_GT(crcDrops, 0u);
    c.c.quiesce(70000);
    EXPECT_EQ(c.totalCoins(), 95);
}

TEST(Recovery, CrashMidExchangeRestoredByAudit)
{
    // Tile 4 (holding most of the pool) power-fails mid-run and comes
    // back later. Its coins are gone — in-flight exchanges with it
    // are abandoned after the recover probes go unanswered — and only
    // the audit watchdog can restore the provisioned total.
    auto cfg = lossyConfig(3, 0.0);
    cfg.fault.outages.push_back({4, 2000, 12000, false});
    LossyCluster c(cfg);
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.unit(i).setMax(maxes[i]);
    c.unit(4).setHas(95);
    c.c.sealProvision();
    c.startAll();

    // Let the crash hit while coins are still concentrated on tile 4.
    c.eq().runUntil(3000);
    EXPECT_TRUE(c.unit(4).crashed());
    EXPECT_LT(c.totalCoins(), 95) << "the crash destroyed no coins?";

    // Run past the restart; the tile resumes (max restored) with
    // empty registers, then the audit sweep remints the loss.
    c.eq().runUntil(60000);
    EXPECT_FALSE(c.unit(4).crashed());
    EXPECT_EQ(c.unit(4).max(), 60);
    auto report = c.c.quiesce(70000);
    EXPECT_GT(report.gap, 0) << "audit saw no gap to close";
    EXPECT_EQ(c.totalCoins(), 95);

    // And the reminted cluster still converges proportionally.
    c.eq().runUntil(c.eq().now() + 100000);
    double alpha = 95.0 / 200.0;
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_NEAR(static_cast<double>(c.unit(i).has()),
                    alpha * static_cast<double>(maxes[i]), 6.0)
            << "tile " << i;
    }
    EXPECT_EQ(c.totalCoins(), 95);
}

TEST(Recovery, SocSurvivesAcceleratorCrashMidWorkload)
{
    // Full-stack version: the NVDLA tile (node 4 of the 3x3 AV SoC)
    // power-fails during a parallel workload and recovers. The run
    // must still complete, and the audit watchdog armed by the restart
    // must remint the coins the crash destroyed.
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.budgetMw = 120.0;
    soc::Soc s(soc::make3x3AvSoc(), pm, /*seed=*/11);

    fault::FaultConfig fc;
    fc.outages.push_back({4, 4000, 20000, /*freeze=*/false});
    fault::FaultPlane plane(fc);
    s.installFaultPlane(plane);

    auto st = s.run(soc::avParallel(s.config()));
    EXPECT_TRUE(st.completed);
    EXPECT_GT(plane.stats().outageDrops, 0u)
        << "the outage window never intercepted traffic";

    // Make sure the restart edge (tick 20000) has fired even if the
    // workload finished early, then let the audit sweeps run.
    auto &eq = s.eventQueue();
    eq.runUntil(std::max<sim::Tick>(eq.now(), 20000) + 50000);

    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    EXPECT_FALSE(bc.unit(4).crashed());
    EXPECT_GE(bc.audit().gapsClosed(), 1u);
    EXPECT_GT(bc.audit().coinsMinted(), 0);

    // Quiesce the protocol (stop initiating, drain in-flight traffic
    // and recovery probes), then a final sweep must close the books
    // exactly against the provisioned pool.
    for (noc::NodeId id : s.config().managedAccelerators())
        bc.unit(id).stop();
    eq.runUntil(eq.now() + 100000);
    bc.audit().reconcile();
    EXPECT_EQ(bc.clusterCoins(), bc.scale().poolCoins);
}

// ------------------------------------------------------------- storms
//
// Sustained reorder/duplicate/stale-sequence pressure, observed through
// the metrics registry: beyond surviving the storm with the books
// closed, the registry's exchange-loss columns must agree exactly with
// the FaultPlane and unit ground truth, so the observability plane can
// be trusted to report chaos runs faithfully.

/** Value of the named column in the registry's latest snapshot. */
double
lastValue(const trace::Registry &reg, const std::string &name)
{
    const auto &schema = reg.schema();
    for (std::size_t i = 0; i < schema.size(); ++i) {
        if (schema[i].name == name)
            return reg.snapshots().back().values[i];
    }
    ADD_FAILURE() << "no metric column named " << name;
    return -1.0;
}

TEST(Recovery, ReorderStormResolvesStaleSequencesOnce)
{
    // Most coin packets are held back 1..2048 ticks, shuffling
    // delivery order: a delayed CoinUpdate routinely arrives after its
    // exchange already timed out and was resolved through CoinRecover,
    // so the late copy carries a stale sequence number and must be
    // ignored, not re-applied.
    auto cfg = lossyConfig(3, 0.0);
    cfg.fault.coinTrafficOnly = true;
    cfg.fault.base.delay = 0.7;
    cfg.fault.base.delayMin = 1;
    cfg.fault.base.delayMax = 2048;
    LossyCluster c(cfg);
    trace::Registry reg;
    c.c.attachMetrics(&reg, /*interval=*/2048);
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.unit(i).setMax(maxes[i]);
    c.unit(4).setHas(95);
    c.c.sealProvision();
    c.startAll();
    c.eq().runUntil(150000);
    c.c.quiesce(70000);
    EXPECT_EQ(c.totalCoins(), 95);

    reg.sample(c.eq().now());
    EXPECT_GT(lastValue(reg, "fault.delays"), 0.0);
    EXPECT_EQ(lastValue(reg, "fault.delays"),
              static_cast<double>(c.c.plane().stats().delays));
    std::uint64_t stale = 0, recovered = 0;
    for (std::size_t i = 0; i < 9; ++i) {
        stale += c.unit(i).duplicatesIgnored();
        recovered += c.unit(i).updatesRecovered();
    }
    EXPECT_GT(stale, 0u) << "no reordered packet ever went stale";
    EXPECT_GT(recovered, 0u) << "no timed-out delta was replayed";
    EXPECT_EQ(lastValue(reg, "coin.duplicates_ignored"),
              static_cast<double>(stale));
    EXPECT_EQ(lastValue(reg, "coin.updates_recovered"),
              static_cast<double>(recovered));
}

TEST(Recovery, DuplicateStormAppliesEachDeltaOnce)
{
    // Every coin packet is retransmitted. The replay log and sequence
    // stamps must make each delta count exactly once, and the
    // registry's duplicate accounting must match both the plane (copies
    // injected) and the units (copies ignored).
    auto cfg = lossyConfig(3, 0.0);
    cfg.fault.coinTrafficOnly = true;
    cfg.fault.base.duplicate = 1.0;
    LossyCluster c(cfg);
    trace::Registry reg;
    c.c.attachMetrics(&reg, /*interval=*/2048);
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.unit(i).setMax(maxes[i]);
    c.unit(4).setHas(95);
    c.c.sealProvision();
    c.startAll();
    c.eq().runUntil(150000);
    c.c.quiesce(70000);
    EXPECT_EQ(c.totalCoins(), 95);

    reg.sample(c.eq().now());
    const auto &fs = c.c.plane().stats();
    EXPECT_GT(fs.duplicates, 0u);
    EXPECT_EQ(lastValue(reg, "fault.duplicates"),
              static_cast<double>(fs.duplicates));
    std::uint64_t ignored = 0;
    for (std::size_t i = 0; i < 9; ++i)
        ignored += c.unit(i).duplicatesIgnored();
    EXPECT_GT(ignored, 0u);
    EXPECT_EQ(lastValue(reg, "coin.duplicates_ignored"),
              static_cast<double>(ignored));
    EXPECT_EQ(lastValue(reg, "noc.packets_delivered"),
              static_cast<double>(c.c.net().packetsDelivered()));
}

TEST(Recovery, CombinedStormLossAccountingMatchesGroundTruth)
{
    // Drop + heavy delay + duplication at once: every recovery
    // mechanism runs concurrently. The registry's exchange-loss
    // columns (timeouts, recoveries, stale copies, injected faults)
    // must equal the FaultPlane and unit counters exactly, and the
    // books must still close.
    auto cfg = lossyConfig(3, 0.0);
    cfg.fault.coinTrafficOnly = true;
    cfg.fault.base.drop = 0.15;
    cfg.fault.base.delay = 0.5;
    cfg.fault.base.delayMin = 1;
    cfg.fault.base.delayMax = 1024;
    cfg.fault.base.duplicate = 0.5;
    LossyCluster c(cfg);
    trace::Registry reg;
    c.c.attachMetrics(&reg, /*interval=*/2048);
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.unit(i).setMax(maxes[i]);
    c.unit(4).setHas(95);
    c.c.sealProvision();
    c.startAll();
    c.eq().runUntil(150000);
    c.c.quiesce(70000);
    EXPECT_EQ(c.totalCoins(), 95);

    reg.sample(c.eq().now());
    const auto &fs = c.c.plane().stats();
    EXPECT_GT(fs.drops, 0u);
    EXPECT_EQ(lastValue(reg, "fault.drops"),
              static_cast<double>(fs.drops));
    EXPECT_EQ(lastValue(reg, "fault.delays"),
              static_cast<double>(fs.delays));
    EXPECT_EQ(lastValue(reg, "fault.duplicates"),
              static_cast<double>(fs.duplicates));
    std::uint64_t timedOut = 0, recovered = 0, ignored = 0;
    for (std::size_t i = 0; i < 9; ++i) {
        timedOut += c.unit(i).exchangesTimedOut();
        recovered += c.unit(i).updatesRecovered();
        ignored += c.unit(i).duplicatesIgnored();
    }
    EXPECT_GT(timedOut, 0u) << "the storm never timed out an exchange";
    EXPECT_GT(recovered, 0u);
    EXPECT_EQ(lastValue(reg, "coin.exchanges_timed_out"),
              static_cast<double>(timedOut));
    EXPECT_EQ(lastValue(reg, "coin.updates_recovered"),
              static_cast<double>(recovered));
    EXPECT_EQ(lastValue(reg, "coin.duplicates_ignored"),
              static_cast<double>(ignored));
}

TEST(Recovery, CrashInsidePartitionRemintedAfterHeal)
{
    // Worst case for the remint watchdog: tile 4 (holding the whole
    // pool) power-fails *while its entire column is partitioned off*,
    // and even restarts before the partition heals. The audit census
    // counts crashed tiles at zero, so the gap is visible and reminted
    // to the reachable side while the column is still dark; after the
    // heal the books must close exactly — no double remint when the
    // restarted (empty) tile rejoins.
    auto cfg = lossyConfig(3, 0.0);
    cfg.fault.outages.push_back({4, 2000, 12000, false});
    noc::Topology topo(3, 3, false);
    // Cut both column boundaries: nodes {1, 4, 7} are unreachable for
    // the whole crash window and well past the restart.
    cfg.fault.partitions.push_back(
        fault::columnPartition(topo, 0, 2000, 20000));
    cfg.fault.partitions.push_back(
        fault::columnPartition(topo, 1, 2000, 20000));
    cfg.auditPeriod = 4096;
    LossyCluster c(cfg);
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.unit(i).setMax(maxes[i]);
    c.unit(4).setHas(95);
    c.c.sealProvision();
    c.startAll();

    c.eq().runUntil(3000);
    EXPECT_TRUE(c.unit(4).crashed());
    EXPECT_LT(c.totalCoins(), 95) << "the crash destroyed no coins?";

    // Restart happens at 12000, still inside the partition window: the
    // tile is back up (empty registers) but unreachable over the NoC.
    c.eq().runUntil(16000);
    EXPECT_FALSE(c.unit(4).crashed());
    // The periodic audit sweep runs in the serial lane, not over the
    // mesh, so it has already reminted the loss — conservation does
    // not wait for the heal.
    EXPECT_GT(c.c.audit().coinsMinted(), 0)
        << "no remint while the column was dark";
    EXPECT_EQ(c.totalCoins(), 95) << "census missed the restarted tile";

    // Heal, settle, and close the books exactly.
    c.eq().runUntil(60000);
    auto report = c.c.quiesce(70000);
    EXPECT_EQ(report.gap, 0) << "books did not close after the heal";
    EXPECT_EQ(c.totalCoins(), 95);

    // And the healed cluster still converges proportionally.
    c.eq().runUntil(c.eq().now() + 100000);
    double alpha = 95.0 / 200.0;
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_NEAR(static_cast<double>(c.unit(i).has()),
                    alpha * static_cast<double>(maxes[i]), 6.0)
            << "tile " << i;
    }
    EXPECT_EQ(c.totalCoins(), 95);
}

TEST(Recovery, FrozenTileKeepsItsCoins)
{
    // A freeze window is a clock-gated stall, not a crash: the tile
    // keeps its registers and resumes where it left off; no remint is
    // needed.
    auto cfg = lossyConfig(2, 0.0);
    cfg.fault.outages.push_back({1, 1000, 4000, true});
    LossyCluster c(cfg);
    seedPair(c);
    c.eq().runUntil(2000);
    EXPECT_FALSE(c.unit(1).crashed());
    const coin::Coins held = c.unit(1).has();
    c.eq().runUntil(3900);
    EXPECT_EQ(c.unit(1).has(), held) << "frozen tile moved coins";
    c.eq().runUntil(60000);
    auto report = c.c.quiesce(70000);
    EXPECT_EQ(report.gap, 0) << "a freeze should never destroy coins";
    EXPECT_EQ(c.totalCoins(), 16);
    EXPECT_EQ(c.unit(0).has(), 8);
    EXPECT_EQ(c.unit(1).has(), 8);
}

} // namespace
