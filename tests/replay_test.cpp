/**
 * @file
 * Replay-engine tests: scenario round-trip through the log header,
 * thread-count bit-identity of recorded sweeps, lockstep replay
 * verification, and divergence localization (diff + epoch bisection)
 * on a tampered recording — the ISSUE acceptance path, in-process.
 */

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "record/replay.hpp"

namespace {

using namespace blitz;
using record::FlightRecorder;
using record::ReplayScenario;

ReplayScenario
chaosScenario()
{
    ReplayScenario sc;
    sc.d = 4;
    sc.drop = 0.05;
    sc.crash = true;
    sc.partition = true;
    sc.seed = 7;
    sc.trials = 2;
    sc.snapshotEvery = 2'048;
    return sc;
}

FlightRecorder
recordWithThreads(const ReplayScenario &sc, std::size_t threads)
{
    sweep::SweepOptions opts;
    opts.threads = threads;
    return record::recordScenario(sc, opts);
}

TEST(Replay, ScenarioSurvivesTheLogHeaderRoundTrip)
{
    ReplayScenario sc = chaosScenario();
    sc.duplicate = 0.02;
    sc.corrupt = 0.01;
    sc.deadline = 123'456;
    const ReplayScenario back =
        ReplayScenario::unpack(sc.pack());
    EXPECT_EQ(back.d, sc.d);
    EXPECT_DOUBLE_EQ(back.drop, sc.drop);
    EXPECT_DOUBLE_EQ(back.duplicate, sc.duplicate);
    EXPECT_DOUBLE_EQ(back.corrupt, sc.corrupt);
    EXPECT_EQ(back.crash, sc.crash);
    EXPECT_EQ(back.partition, sc.partition);
    EXPECT_EQ(back.seed, sc.seed);
    EXPECT_EQ(back.trials, sc.trials);
    EXPECT_EQ(back.deadline, sc.deadline);
    EXPECT_EQ(back.snapshotEvery, sc.snapshotEvery);
}

TEST(Replay, RecordingIsBitIdenticalAcrossSweepThreadCounts)
{
    const ReplayScenario sc = chaosScenario();
    const FlightRecorder one = recordWithThreads(sc, 1);
    ASSERT_GT(one.size(), 0u);
    const FlightRecorder two = recordWithThreads(sc, 2);
    const FlightRecorder four = recordWithThreads(sc, 4);
    EXPECT_EQ(one.size(), two.size());
    EXPECT_EQ(one.digest(), two.digest());
    EXPECT_EQ(one.size(), four.size());
    EXPECT_EQ(one.digest(), four.digest());
}

TEST(Replay, LockstepVerifyMatchesACleanRecording)
{
    const ReplayScenario sc = chaosScenario();
    const FlightRecorder ref = recordWithThreads(sc, 2);
    for (std::size_t threads : {1u, 2u, 4u}) {
        sweep::SweepOptions opts;
        opts.threads = threads;
        const auto res = record::replayVerify(ref, sc, opts);
        EXPECT_TRUE(res.match) << "diverged at " << res.divergedAt
                               << " with " << threads << " threads";
        EXPECT_EQ(res.recordsChecked, ref.size());
    }
}

TEST(Replay, TamperedRecordingIsLocalizedByVerifyDiffAndBisect)
{
    const ReplayScenario sc = chaosScenario();
    const FlightRecorder clean = recordWithThreads(sc, 2);
    ASSERT_GT(clean.size(), 1'000u);

    FlightRecorder bad = recordWithThreads(sc, 2);
    const std::uint64_t idx = clean.size() / 2;
    ASSERT_TRUE(record::tamperRecord(bad, idx));

    // Lockstep replay pinpoints the exact record.
    const auto verify = record::replayVerify(bad, sc);
    EXPECT_FALSE(verify.match);
    EXPECT_EQ(verify.divergedAt, idx);

    // Linear diff agrees.
    const auto diff = record::diffRecordings(clean, bad);
    ASSERT_FALSE(diff.identical);
    EXPECT_EQ(diff.firstDiff, idx);

    // Epoch bisection lands on the same record with far fewer digest
    // probes than epochs, and quotes the divergent pair.
    const auto bisect = record::bisectRecordings(clean, bad);
    ASSERT_TRUE(bisect.diverged);
    EXPECT_EQ(bisect.firstDiff, idx);
    EXPECT_GE(bisect.firstDiff, bisect.windowBegin);
    EXPECT_LT(bisect.firstDiff, bisect.windowEnd);
    EXPECT_FALSE(bisect.context.empty());
    EXPECT_NE(bisect.context.find("A:"), std::string::npos);
    EXPECT_NE(bisect.context.find("B:"), std::string::npos);

    // Identical recordings bisect to "no divergence".
    const auto same = record::bisectRecordings(clean, clean);
    EXPECT_FALSE(same.diverged);
}

TEST(Replay, TamperIndexOutOfRangeIsRejected)
{
    FlightRecorder rec;
    rec.mint(0, 0, 4, 0, 0);
    EXPECT_TRUE(record::tamperRecord(rec, 0));
    EXPECT_FALSE(record::tamperRecord(rec, 1));
}

} // namespace
