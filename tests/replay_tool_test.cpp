/**
 * @file
 * End-to-end exercise of the installed `blitz-replay` binary (path
 * injected at compile time via BLITZ_REPLAY_TOOL): record a chaos
 * scenario to disk, verify it in lockstep, then record a tampered twin
 * and prove `bisect` exits 1 and names the exact divergent record.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace {

/** Run `blitz-replay <args>`, capture combined output, return exit code. */
int
runTool(const std::string &args, std::string *output = nullptr)
{
    // PID-unique capture path: ctest runs this suite's tests as
    // concurrent processes, and a shared file would interleave them.
    const std::string outPath = testing::TempDir() + "replay_tool_out." +
                                std::to_string(getpid()) + ".txt";
    const std::string cmd = std::string(BLITZ_REPLAY_TOOL) + " " + args +
                            " > " + outPath + " 2>&1";
    const int status = std::system(cmd.c_str());
    if (output) {
        std::ifstream in(outPath);
        std::ostringstream ss;
        ss << in.rdbuf();
        *output = ss.str();
    }
    std::remove(outPath.c_str());
    if (WIFEXITED(status))
        return WEXITSTATUS(status);
    return -1;
}

const char *kScenario =
    "--d 4 --drop 0.05 --crash --partition --seed 7 --trials 2";

TEST(ReplayTool, RecordThenVerifyRoundTrips)
{
    const std::string log = testing::TempDir() + "tool_clean.blzr";
    std::string out;
    ASSERT_EQ(runTool("record " + log + " " + std::string(kScenario),
                      &out),
              0)
        << out;
    EXPECT_NE(out.find("recorded"), std::string::npos);
    EXPECT_NE(out.find("digest"), std::string::npos);

    EXPECT_EQ(runTool("info " + log, &out), 0) << out;
    EXPECT_NE(out.find("records"), std::string::npos);

    // Lockstep re-execution matches at several thread counts.
    EXPECT_EQ(runTool("verify " + log + " --threads 1", &out), 0) << out;
    EXPECT_EQ(runTool("verify " + log + " --threads 4", &out), 0) << out;
    EXPECT_NE(out.find("lockstep match"), std::string::npos);

    // A log diffed against itself is identical (exit 0).
    EXPECT_EQ(runTool("diff " + log + " " + log, &out), 0) << out;
    EXPECT_NE(out.find("identical"), std::string::npos);
    std::remove(log.c_str());
}

TEST(ReplayTool, BisectPinpointsTheFirstDivergentEvent)
{
    const std::string clean = testing::TempDir() + "tool_a.blzr";
    const std::string tampered = testing::TempDir() + "tool_b.blzr";
    const std::string scenario(kScenario);
    std::string out;
    ASSERT_EQ(runTool("record " + clean + " " + scenario, &out), 0)
        << out;
    ASSERT_EQ(runTool("record " + tampered + " " + scenario +
                          " --tamper 1000",
                      &out),
              0)
        << out;
    EXPECT_NE(out.find("tampered record #1000"), std::string::npos);

    // Divergence is exit code 1, and the report names record #1000.
    EXPECT_EQ(runTool("diff " + clean + " " + tampered, &out), 1) << out;
    EXPECT_NE(out.find("record #1000"), std::string::npos);

    EXPECT_EQ(runTool("bisect " + clean + " " + tampered, &out), 1)
        << out;
    EXPECT_NE(out.find("first divergence: record #1000"),
              std::string::npos);
    EXPECT_NE(out.find("A:"), std::string::npos);
    EXPECT_NE(out.find("B:"), std::string::npos);

    // The --bisect spelling is accepted too.
    EXPECT_EQ(runTool("--bisect " + clean + " " + tampered, &out), 1)
        << out;
    EXPECT_NE(out.find("first divergence: record #1000"),
              std::string::npos);

    // Tampering breaks lockstep verification of the tampered log.
    EXPECT_EQ(runTool("verify " + tampered, &out), 1) << out;
    EXPECT_NE(out.find("DIVERGED at record #1000"), std::string::npos);

    std::remove(clean.c_str());
    std::remove(tampered.c_str());
}

TEST(ReplayTool, UsageAndIoErrorsExitTwo)
{
    std::string out;
    EXPECT_EQ(runTool("", &out), 2);
    EXPECT_EQ(runTool("frobnicate", &out), 2);
    EXPECT_NE(out.find("usage"), std::string::npos);
    EXPECT_EQ(runTool("verify " + testing::TempDir() +
                          "definitely_missing.blzr",
                      &out),
              2)
        << out;
}

} // namespace
