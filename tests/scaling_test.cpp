/**
 * @file
 * Tests for the analytical scaling model (Equations 5.1-5.3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/scaling.hpp"
#include "sim/logging.hpp"

namespace {

using namespace blitz;
using analytic::fitLaw;
using analytic::ScalingLaw;
using analytic::Scheme;

TEST(Scaling, ExponentsMatchPaper)
{
    EXPECT_DOUBLE_EQ(analytic::schemeExponent(Scheme::BC), 0.5);
    EXPECT_DOUBLE_EQ(analytic::schemeExponent(Scheme::BCC), 1.0);
    EXPECT_DOUBLE_EQ(analytic::schemeExponent(Scheme::CRR), 1.0);
    EXPECT_DOUBLE_EQ(analytic::schemeExponent(Scheme::TS), 1.0);
}

TEST(Scaling, FitRecoversExactLaw)
{
    // Samples generated from T = 0.2 sqrt(N) must fit tau = 0.2.
    std::vector<std::pair<double, double>> samples;
    for (double n : {4.0, 16.0, 64.0, 256.0})
        samples.emplace_back(n, 0.2 * std::sqrt(n));
    ScalingLaw law = fitLaw(Scheme::BC, samples);
    EXPECT_NEAR(law.tauUs, 0.2, 1e-12);
}

TEST(Scaling, FitIsLeastSquaresOnNoisyData)
{
    std::vector<std::pair<double, double>> samples{
        {10.0, 9.0}, {10.0, 11.0}}; // symmetric noise around 10
    ScalingLaw law = fitLaw(Scheme::CRR, samples);
    EXPECT_NEAR(law.tauUs, 1.0, 1e-12);
}

TEST(Scaling, ResponseGrowsWithN)
{
    ScalingLaw bc{Scheme::BC, 0.2, 0.5};
    EXPECT_NEAR(bc.responseUs(100.0), 2.0, 1e-12);
    EXPECT_NEAR(bc.responseUs(400.0), 4.0, 1e-12);
}

TEST(Scaling, NmaxClosedFormEq51to53)
{
    // Eq 5.3: N_max = (Tw/tau)^(2/3) for BC.
    ScalingLaw bc{Scheme::BC, 0.2, 0.5};
    double tw = 7000.0; // 7 ms in us
    EXPECT_NEAR(bc.nMax(tw), std::pow(tw / 0.2, 2.0 / 3.0), 1e-9);
    // Eq 5.1: N_max = (Tw/tau)^(1/2) for C-RR.
    ScalingLaw crr{Scheme::CRR, 0.96, 1.0};
    EXPECT_NEAR(crr.nMax(tw), std::sqrt(tw / 0.96), 1e-9);
}

TEST(Scaling, NmaxIsSelfConsistent)
{
    // At N = N_max the response time equals Tw / N by definition.
    for (Scheme s : {Scheme::BC, Scheme::BCC, Scheme::TS}) {
        ScalingLaw law{s, 0.5, analytic::schemeExponent(s)};
        double tw = 10000.0;
        double n = law.nMax(tw);
        EXPECT_NEAR(law.responseUs(n), tw / n, 1e-6);
    }
}

TEST(Scaling, BlitzCoinSupportsMoreAccelerators)
{
    // Fitted ballpark constants from the paper: tau_BC=0.20,
    // tau_BCC=0.66, tau_CRR=0.96 us. BC must support several times
    // more accelerators at any Tw.
    ScalingLaw bc{Scheme::BC, 0.20, 0.5};
    ScalingLaw bcc{Scheme::BCC, 0.66, 1.0};
    ScalingLaw crr{Scheme::CRR, 0.96, 1.0};
    for (double tw_ms : {0.2, 1.0, 7.0, 20.0}) {
        double tw = tw_ms * 1000.0;
        EXPECT_GT(bc.nMax(tw) / bcc.nMax(tw), 3.0) << tw_ms;
        EXPECT_GT(bc.nMax(tw) / crr.nMax(tw), 3.0) << tw_ms;
    }
    // And around 1000 accelerators at Tw >= 7 ms (Section VI-D).
    EXPECT_GT(bc.nMax(7000.0), 700.0);
}

TEST(Scaling, PmTimeFractionMatchesPaperExample)
{
    // Section VI-D: N=100, Tw=10ms -> C-RR 96%, BC-C 66%, BC 2.0%.
    ScalingLaw bc{Scheme::BC, 0.20, 0.5};
    ScalingLaw bcc{Scheme::BCC, 0.66, 1.0};
    ScalingLaw crr{Scheme::CRR, 0.96, 1.0};
    EXPECT_NEAR(crr.pmTimeFraction(100.0, 10000.0), 0.96, 1e-9);
    EXPECT_NEAR(bcc.pmTimeFraction(100.0, 10000.0), 0.66, 1e-9);
    EXPECT_NEAR(bc.pmTimeFraction(100.0, 10000.0), 0.02, 1e-9);
}

TEST(Scaling, PriceTheoryLawIsSlowestHardwareScheme)
{
    ScalingLaw pt = analytic::priceTheoryLaw();
    ScalingLaw bc{Scheme::BC, 0.20, 0.5};
    // PT response at N=256 after HW scaling ~ 28 us.
    EXPECT_NEAR(pt.responseUs(256.0), 9000.0 / std::pow(10.0, 2.5),
                1.0);
    EXPECT_GT(pt.responseUs(256.0), bc.responseUs(256.0));
}

TEST(Scaling, FitRejectsBadInput)
{
    EXPECT_THROW(fitLaw(Scheme::BC, {}), sim::FatalError);
    EXPECT_THROW(fitLaw(Scheme::BC, {{0.0, 1.0}}), sim::FatalError);
}

TEST(Scaling, SchemeNames)
{
    EXPECT_STREQ(analytic::schemeName(Scheme::BC), "BC");
    EXPECT_STREQ(analytic::schemeName(Scheme::BCC), "BC-C");
    EXPECT_STREQ(analytic::schemeName(Scheme::CRR), "C-RR");
    EXPECT_STREQ(analytic::schemeName(Scheme::TS), "TS");
    EXPECT_STREQ(analytic::schemeName(Scheme::PT), "PT");
}

} // namespace
