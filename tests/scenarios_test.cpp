/**
 * @file
 * Tests for the workload scenario builders (Section V-B shapes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "soc/scenarios.hpp"

namespace {

using namespace blitz;

TEST(Scenarios, AvParallelShape)
{
    auto cfg = soc::make3x3AvSoc();
    auto dag = soc::avParallel(cfg);
    EXPECT_EQ(dag.size(), 6u); // one task per accelerator
    EXPECT_TRUE(dag.isParallel());
    EXPECT_NO_THROW(dag.validate());
    // Staggered lengths: all durations-at-Fmax distinct per tile type.
    EXPECT_GT(dag.totalWork(), 0.0);
}

TEST(Scenarios, AvParallelTargetsDistinctTiles)
{
    auto cfg = soc::make3x3AvSoc();
    auto dag = soc::avParallel(cfg);
    std::set<noc::NodeId> tiles;
    for (const auto &t : dag.tasks())
        tiles.insert(t.tile);
    EXPECT_EQ(tiles.size(), 6u);
}

TEST(Scenarios, AvDependentPipelines)
{
    auto cfg = soc::make3x3AvSoc();
    auto dag = soc::avDependent(cfg, 3);
    EXPECT_EQ(dag.size(), 18u); // 6 tasks per frame x 3 frames
    EXPECT_FALSE(dag.isParallel());
    EXPECT_NO_THROW(dag.validate());
    // Frame 0 has 5 roots (FFTs + Viterbis); later frames depend on
    // the previous NVDLA.
    EXPECT_EQ(dag.roots().size(), 5u);
    // Each NVDLA task depends on its frame's full stage.
    int nvdla_tasks = 0;
    for (const auto &t : dag.tasks()) {
        if (t.name.rfind("nvdla", 0) == 0) {
            ++nvdla_tasks;
            EXPECT_EQ(t.deps.size(), 5u);
        }
    }
    EXPECT_EQ(nvdla_tasks, 3);
}

TEST(Scenarios, AvDependentFrameCountScales)
{
    auto cfg = soc::make3x3AvSoc();
    EXPECT_EQ(soc::avDependent(cfg, 1).size(), 6u);
    EXPECT_EQ(soc::avDependent(cfg, 5).size(), 30u);
}

TEST(Scenarios, VisionParallelCoversAllThirteen)
{
    auto cfg = soc::make4x4VisionSoc();
    auto dag = soc::visionParallel(cfg);
    EXPECT_EQ(dag.size(), 13u);
    EXPECT_TRUE(dag.isParallel());
    std::set<noc::NodeId> tiles;
    for (const auto &t : dag.tasks())
        tiles.insert(t.tile);
    EXPECT_EQ(tiles.size(), 13u);
}

TEST(Scenarios, VisionDependentStages)
{
    auto cfg = soc::make4x4VisionSoc();
    auto dag = soc::visionDependent(cfg, 2);
    EXPECT_EQ(dag.size(), 26u); // 13 per frame
    EXPECT_NO_THROW(dag.validate());
    // Conv stages depend on all four Vision front-ends.
    for (const auto &t : dag.tasks()) {
        if (t.name.rfind("conv", 0) == 0) {
            EXPECT_EQ(t.deps.size(), 4u);
        }
        if (t.name.rfind("gemm", 0) == 0) {
            EXPECT_EQ(t.deps.size(), 5u);
        }
    }
}

TEST(Scenarios, SiliconWorkloadSizes)
{
    auto cfg = soc::make6x6SiliconSoc();
    for (int n : {3, 4, 5, 7})
        EXPECT_EQ(soc::siliconWorkload(cfg, n).size(),
                  static_cast<std::size_t>(n));
    EXPECT_THROW(soc::siliconWorkload(cfg, 6), sim::FatalError);
}

TEST(Scenarios, SiliconNvdlaEndsFirst)
{
    // Fig. 20 captures the end of the NVDLA task; it must be the
    // shortest at Fmax.
    auto cfg = soc::make6x6SiliconSoc();
    auto dag = soc::siliconWorkload(cfg, 7);
    double nvdla_duration = 0.0;
    double shortest_other = 1e30;
    for (const auto &t : dag.tasks()) {
        double us = t.workCycles / cfg.tile(t.tile).curve->fMax();
        if (t.name == "NVDLA0")
            nvdla_duration = us;
        else
            shortest_other = std::min(shortest_other, us);
    }
    EXPECT_GT(nvdla_duration, 0.0);
    EXPECT_LT(nvdla_duration, shortest_other);
}

TEST(Scenarios, WorkMatchesDurationTimesFmax)
{
    auto cfg = soc::make3x3AvSoc();
    auto dag = soc::avParallel(cfg);
    // The NVDLA task is 600 us at Fmax = 900 MHz -> 540000 cycles.
    for (const auto &t : dag.tasks()) {
        if (t.name == "nvdla") {
            EXPECT_NEAR(t.workCycles, 600.0 * 900.0, 1.0);
        }
    }
}

TEST(Scenarios, BudgetsMatchPaperFractions)
{
    auto av = soc::make3x3AvSoc();
    EXPECT_NEAR(soc::budgets::av30Percent / av.totalManagedPMax(),
                0.30, 1e-9);
    EXPECT_NEAR(soc::budgets::av15Percent / av.totalManagedPMax(),
                0.15, 1e-9);
    auto vis = soc::make4x4VisionSoc();
    EXPECT_NEAR(soc::budgets::vision33Percent /
                    vis.totalManagedPMax(),
                0.33, 0.01);
    EXPECT_NEAR(soc::budgets::vision66Percent /
                    vis.totalManagedPMax(),
                0.66, 0.02);
}

} // namespace
