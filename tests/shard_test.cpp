/**
 * @file
 * BSP shard-group tests: the partition-independent ordering key, the
 * superstep/mailbox machinery, the serial observer lane, and the
 * bit-identity of sharded chaos runs across shard counts. The tsan
 * preset runs this suite (plus the sharded golden pins) with real
 * worker threads, so every assertion here doubles as a race probe.
 */

#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fault/chaos.hpp"
#include "record/recorder.hpp"
#include "sim/digest.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard.hpp"
#include "soc/pm_impl.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "trace/metrics.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace blitz;

TEST(ColumnBands, PartitionsContiguouslyAndClamps)
{
    // 4 columns, 2 shards: the left half is shard 0, the right shard 1.
    const auto m = sim::columnBands(4, 2, 2);
    ASSERT_EQ(m.size(), 8u);
    for (std::uint32_t y = 0; y < 2; ++y) {
        EXPECT_EQ(m[y * 4 + 0], 0u);
        EXPECT_EQ(m[y * 4 + 1], 0u);
        EXPECT_EQ(m[y * 4 + 2], 1u);
        EXPECT_EQ(m[y * 4 + 3], 1u);
    }
    // More shards than columns: clamped, never an empty left band.
    const auto n = sim::columnBands(2, 1, 8);
    EXPECT_EQ(n[0], 0u);
    EXPECT_EQ(n[1], 1u);
    // Bands are monotone in x.
    const auto w = sim::columnBands(7, 1, 3);
    for (std::size_t x = 1; x < 7; ++x)
        EXPECT_LE(w[x - 1], w[x]);
}

/**
 * Execution order log of one run of the cross-shard FIFO scenario: a
 * 1x4 mesh where nodes 0 and 2 both target node 3 with same-tick
 * events. Only node-3 events write the log, so the log has a single
 * writing shard and the observation itself cannot race.
 */
std::vector<int>
crossShardOrder(std::uint32_t shards)
{
    sim::EventQueue eq;
    sim::ShardGroup group(eq, shards, sim::columnBands(4, 1, shards));
    std::vector<int> log;
    std::vector<int> *lp = &log; // raw pointer: cross-shard callbacks
                                 // must be trivially copyable

    // Node 2 fires first in setup order; its same-tick events to node
    // 3 must still sort AFTER node 0's (origin locus 0 < 2) — the
    // regression a global nextSeq_ ordering gets wrong, since
    // per-shard insertion order depends on the partition.
    eq.scheduleAtNode(2, 10, [&eq, lp] {
        eq.scheduleAtNode(3, 11, [lp] { lp->push_back(20); });
        eq.scheduleAtNode(3, 11, [lp] { lp->push_back(21); });
    });
    eq.scheduleAtNode(0, 10, [&eq, lp] {
        eq.scheduleAtNode(3, 11, [lp] { lp->push_back(0); });
        eq.scheduleAtNode(3, 11, [lp] { lp->push_back(1); });
    });

    eq.runUntil(64);
    return log;
}

TEST(ShardOrdering, CrossShardSameTickFifoIsPartitionIndependent)
{
    // (prio, origin locus, per-locus counter): node 0's two events
    // precede node 2's, each pair in send order, at EVERY shard count
    // — including 2, where node 0 reaches node 3 through a mailbox
    // while node 2 inserts directly.
    const std::vector<int> want{0, 1, 20, 21};
    EXPECT_EQ(crossShardOrder(1), want);
    EXPECT_EQ(crossShardOrder(2), want);
    EXPECT_EQ(crossShardOrder(4), want);
}

TEST(ShardOrdering, SerialLaneRunsAfterSameTickShardPhases)
{
    sim::EventQueue eq;
    sim::ShardGroup group(eq, 2, sim::columnBands(4, 1, 2));
    // Both node events live in shard 0's band (nodes 0 and 1), so the
    // plain vector has one writing thread per phase; the serial event
    // runs strictly after the parallel phase by the superstep contract.
    std::vector<int> order;
    eq.scheduleAtNode(0, 10, [&order] { order.push_back(1); });
    eq.scheduleAtNode(1, 10, [&order] { order.push_back(2); });
    // No locus scope: lands in the serial (global observer) lane.
    eq.schedule(10, [&order] { order.push_back(99); });
    eq.runUntil(64);
    ASSERT_EQ(order.size(), 3u);
    // The serial event is last; the node events sort by locus.
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 99);
}

TEST(ShardGroup, CountsEpochsAndCrossEvents)
{
    sim::EventQueue eq;
    sim::ShardGroup group(eq, 2, sim::columnBands(4, 1, 2));
    int fired = 0;
    sim::LocusScope at0(eq, 0);
    eq.scheduleAtNode(0, 5, [&eq, &fired] {
        ++fired;
        // Crosses the 0|1 boundary: shard 0 -> shard 1 mailbox.
        eq.scheduleAtNode(3, 6, [&fired] { ++fired; });
    });
    eq.runUntil(64);
    EXPECT_EQ(fired, 2);
    EXPECT_GE(group.epochs(), 2u);
    EXPECT_EQ(group.crossEvents(), 1u);
    EXPECT_EQ(eq.totalExecuted(), 2u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 64u);
}

// ------------------------------------------------------ chaos harness

/**
 * Digest of one small fault-injected cluster run at @p shards. Mirrors
 * the golden-trace chaos digest's fields (exact integers only — the
 * sharded latency aggregates, the merged fault stats, per-unit state).
 */
struct ChaosRun
{
    std::uint64_t digest;   ///< observable protocol/NoC/fault state
    std::uint64_t executed; ///< kernel events (observers add their own)
};

ChaosRun
chaosRun(std::uint32_t shards, bool observe = false,
         record::FlightRecorder *rec = nullptr)
{
    fault::ChaosConfig cc;
    cc.width = 6;
    cc.height = 6;
    cc.shards = shards;
    cc.seedBase = 77;
    cc.fault.seed = 77;
    cc.fault.coinTrafficOnly = true;
    cc.fault.base.drop = 0.04;
    cc.fault.base.duplicate = 0.02;
    cc.fault.base.corrupt = 0.01;
    cc.fault.outages.push_back({14, 3'000, 9'000, false});
    cc.auditPeriod = 4'096;
    fault::ChaosCluster cluster(cc);

    trace::Tracer tracer;
    trace::Registry reg;
    if (observe) {
        cluster.attachTrace(&tracer);
        cluster.attachMetrics(&reg, 1024);
    }
    if (rec)
        cluster.attachRecorder(rec);

    const std::size_t n = cluster.size();
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const coin::Coins m = 8 << (i % 3);
        cluster.setMax(i, m);
        demand += m;
    }
    for (std::size_t i = 0; i < n / 4; ++i)
        cluster.setHas(i, demand / 2 / (n / 4));
    cluster.sealProvision();
    cluster.startAll();
    cluster.eq().runUntil(9'000);
    cluster.runUntilConverged(2.5, 64, 60'000);
    const auto report = cluster.quiesce(16'384);

    sim::Fnv1a dg;
    dg.i64(report.gap);
    dg.i64(report.counted);
    dg.u64(report.crashedUnits);
    dg.u64(cluster.eq().now());
    const auto &net = cluster.net();
    dg.u64(net.packetsSent());
    dg.u64(net.packetsDelivered());
    dg.u64(net.packetsDropped());
    dg.u64(net.totalHops());
    dg.u64(net.latencyCount());
    dg.u64(net.latencySumTicks());
    dg.u64(net.latencyMaxTicks());
    const auto fs = cluster.plane().stats();
    dg.u64(fs.drops);
    dg.u64(fs.delays);
    dg.u64(fs.duplicates);
    dg.u64(fs.corruptions);
    dg.u64(fs.outageDrops);
    dg.u64(fs.partitionDrops);
    for (std::size_t i = 0; i < n; ++i) {
        dg.i64(cluster.unit(i).has());
        dg.u64(cluster.unit(i).updatesRecovered());
        dg.u64(cluster.unit(i).exchangesAbandoned());
        dg.u64(cluster.unit(i).duplicatesIgnored());
    }
    return {dg.value(), cluster.eq().totalExecuted()};
}

TEST(ShardedChaos, ShardCounts124AreBitIdentical)
{
    const ChaosRun one = chaosRun(1);
    const ChaosRun two = chaosRun(2);
    const ChaosRun four = chaosRun(4);
    EXPECT_EQ(two.digest, one.digest);
    EXPECT_EQ(four.digest, one.digest);
    // Stronger than the observable digest: the kernel executed the
    // exact same number of events no matter the partition.
    EXPECT_EQ(two.executed, one.executed);
    EXPECT_EQ(four.executed, one.executed);
}

TEST(ShardedChaos, ObserversDoNotPerturbTheRun)
{
    // Tracer + metrics + flight recorder attached to a 4-shard run:
    // all three are passive (mutex-guarded appends, sampled gauges in
    // the serial lane), so the digest must not move — and under tsan
    // this is the concurrent-observer race probe. (executed moves: the
    // sampler schedules its own serial-lane events.)
    record::FlightRecorder rec;
    const ChaosRun observed = chaosRun(4, /*observe=*/true, &rec);
    EXPECT_EQ(observed.digest, chaosRun(4).digest);
    EXPECT_GT(rec.totalAppended(), 0u);
    EXPECT_TRUE(rec.concurrent());
}

TEST(ShardedChaos, RecorderCountsAreShardCountInvariant)
{
    // Record order within a tick is unspecified across shards, but the
    // set of journaled decisions is not: total appended records must
    // match between a 1-shard and a 4-shard run of the same scenario.
    record::FlightRecorder rec1, rec4;
    const ChaosRun d1 = chaosRun(1, false, &rec1);
    const ChaosRun d4 = chaosRun(4, false, &rec4);
    EXPECT_EQ(d1.digest, d4.digest);
    EXPECT_EQ(rec1.totalAppended(), rec4.totalAppended());
}

// ------------------------------------------------------- full-SoC runs

/**
 * Digest of one full SoC workload run at @p shards: the 4x4 vision SoC
 * under the decentralized BC manager, with a mid-run crash+restart of
 * an accelerator tile so the fault plane's keyed streams and the
 * onNodeCrash/Restart locus pinning are on the measured path.
 */
std::uint64_t
socRunDigest(std::uint32_t shards)
{
    soc::SocConfig cfg = soc::make4x4VisionSoc();
    cfg.shards = shards;
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.budgetMw = 220.0;
    soc::Soc s(cfg, pm, /*seed=*/23);

    fault::FaultConfig fc;
    fc.seed = 23;
    fc.base.drop = 0.01;
    fc.base.duplicate = 0.01;
    fc.outages.push_back({5, 4'000, 20'000, /*freeze=*/false});
    fault::FaultPlane plane(fc);
    s.installFaultPlane(plane);

    auto st = s.run(soc::visionDependent(s.config(), 2));

    sim::Fnv1a dg;
    dg.u64(st.completed ? 1 : 0);
    dg.u64(st.execTime);
    dg.u64(st.nocPackets);
    dg.u64(st.responseTicks.count());
    dg.f64(st.responseTicks.mean());
    dg.f64(st.responseTicks.max());
    dg.u64(s.eventQueue().now());
    dg.u64(s.eventQueue().totalExecuted());
    const auto &net = s.network();
    dg.u64(net.packetsSent());
    dg.u64(net.packetsDelivered());
    dg.u64(net.packetsDropped());
    dg.u64(net.totalHops());
    const auto fs = plane.stats();
    dg.u64(fs.drops);
    dg.u64(fs.duplicates);
    dg.u64(fs.outageDrops);
    dg.f64(s.totalAccelPowerMw());
    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    dg.i64(bc.clusterCoins());
    dg.f64(bc.clusterError());
    return dg.value();
}

TEST(ShardedSoc, ShardCounts124AreBitIdentical)
{
    // The whole stack — dispatcher, BC units, UVFR tiles, fault plane,
    // settle probe — produces the same run at every partition. The
    // sharded mode is NOT compared against shards=0: the legacy loop
    // stops on the exact completion event while the sharded loop coasts
    // to the next superstep stride, which is a documented difference.
    const std::uint64_t one = socRunDigest(1);
    EXPECT_EQ(socRunDigest(2), one);
    EXPECT_EQ(socRunDigest(4), one);
}

TEST(ShardedSoc, LegacySocIsUntouchedByDefault)
{
    soc::SocConfig cfg = soc::make4x4VisionSoc();
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.budgetMw = 220.0;
    soc::Soc s(cfg, pm, 23);
    EXPECT_EQ(s.shardGroup(), nullptr);
    auto st = s.run(soc::visionParallel(s.config()));
    EXPECT_TRUE(st.completed);
}

TEST(ShardedChaos, LegacyModeIsUntouchedByDefault)
{
    fault::ChaosConfig cc;
    fault::ChaosCluster cluster(cc);
    EXPECT_EQ(cluster.shardGroup(), nullptr);
    // Unsharded latency Summary stays reachable.
    (void)cluster.net().latency();
}

} // namespace
