/**
 * @file
 * Unit tests for the simulation kernel: event queue, RNG, statistics,
 * logging, and time conversions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/logging.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace {

using namespace blitz;

// ---------------------------------------------------------------- time

TEST(Types, TickNanosecondRoundTrip)
{
    EXPECT_DOUBLE_EQ(sim::ticksToNs(1), 1.25);
    EXPECT_DOUBLE_EQ(sim::ticksToNs(800), 1000.0);
    EXPECT_EQ(sim::nsToTicks(1000.0), 800u);
    EXPECT_EQ(sim::usToTicks(1.0), 800u);
    EXPECT_EQ(sim::msToTicks(1.0), 800000u);
}

TEST(Types, NsToTicksRoundsUp)
{
    // 1 ns is less than a cycle; it must not round down to zero.
    EXPECT_EQ(sim::nsToTicks(1.0), 1u);
    EXPECT_EQ(sim::nsToTicks(1.25), 1u);
    EXPECT_EQ(sim::nsToTicks(1.26), 2u);
}

TEST(Types, TicksToUsScales)
{
    EXPECT_DOUBLE_EQ(sim::ticksToUs(800), 1.0);
    EXPECT_DOUBLE_EQ(sim::ticksToMs(800000), 1.0);
}

// --------------------------------------------------------------- events

TEST(EventQueue, RunsInTimeOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickPriorityOrder)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); },
                sim::Priority::Controller);
    eq.schedule(5, [&] { order.push_back(1); },
                sim::Priority::NocTransfer);
    eq.schedule(5, [&] { order.push_back(3); }, sim::Priority::Stats);
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickSamePriorityFifo)
{
    sim::EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.runUntil();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent)
{
    sim::EventQueue eq;
    bool ran = false;
    auto id = eq.schedule(10, [&] { ran = true; });
    eq.cancel(id);
    eq.runUntil();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownIdIsNoOp)
{
    sim::EventQueue eq;
    eq.cancel(12345);
    bool ran = false;
    eq.schedule(1, [&] { ran = true; });
    eq.runUntil();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, RunUntilHonorsLimit)
{
    sim::EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.runUntil(100), 1u);
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilAdvancesNowToLimit)
{
    sim::EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    sim::EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.runUntil();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    sim::EventQueue eq;
    eq.schedule(100, [] {});
    eq.runUntil();
    EXPECT_THROW(eq.schedule(50, [] {}), sim::PanicError);
}

TEST(EventQueue, RunOneReturnsFalseWhenEmpty)
{
    sim::EventQueue eq;
    EXPECT_FALSE(eq.runOne());
}

// Regression: a cancelled event at the front of the queue must not
// unlock execution of a later event beyond the runUntil horizon.
TEST(EventQueue, CancelledFrontDoesNotBreachHorizon)
{
    sim::EventQueue eq;
    bool late_ran = false;
    auto id = eq.schedule(10, [] {});
    eq.schedule(30, [&] { late_ran = true; });
    eq.cancel(id);
    EXPECT_EQ(eq.runUntil(20), 0u);
    EXPECT_FALSE(late_ran) << "event fired past the requested horizon";
    EXPECT_EQ(eq.now(), 20u);
    // The late event is still intact and fires on the next window.
    EXPECT_EQ(eq.runUntil(40), 1u);
    EXPECT_TRUE(late_ran);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, NoEventExecutesPastLimit)
{
    sim::EventQueue eq;
    std::vector<sim::Tick> fired;
    std::vector<sim::EventQueue::EventId> ids;
    for (sim::Tick t = 5; t <= 50; t += 5)
        ids.push_back(eq.schedule(t, [&fired, &eq] {
            fired.push_back(eq.now());
        }));
    // Cancel a scattering of them, including ones at the boundary.
    eq.cancel(ids[0]); // t=5
    eq.cancel(ids[3]); // t=20
    eq.cancel(ids[4]); // t=25
    eq.runUntil(25);
    for (sim::Tick t : fired)
        EXPECT_LE(t, 25u);
    EXPECT_EQ(fired, (std::vector<sim::Tick>{10, 15}));
}

// Regression: the executed count must track callbacks actually run,
// with cancelled entries neither counted nor miscounted.
TEST(EventQueue, RunUntilCountsOnlyExecutedCallbacks)
{
    sim::EventQueue eq;
    int ran = 0;
    auto a = eq.schedule(5, [&] { ++ran; });
    auto b = eq.schedule(5, [&] { ++ran; });
    eq.schedule(8, [&] { ++ran; });
    auto d = eq.schedule(9, [&] { ++ran; });
    eq.schedule(25, [&] { ++ran; });
    eq.cancel(a);
    eq.cancel(b);
    eq.cancel(d);
    EXPECT_EQ(eq.runUntil(10), 1u);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunUntilOnAllCancelledQueueExecutesNothing)
{
    sim::EventQueue eq;
    int ran = 0;
    auto a = eq.schedule(3, [&] { ++ran; });
    auto b = eq.schedule(7, [&] { ++ran; });
    eq.cancel(a);
    eq.cancel(b);
    EXPECT_EQ(eq.runUntil(10), 0u);
    EXPECT_EQ(ran, 0);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, RunOneHonorsHorizon)
{
    sim::EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&] { ran = true; });
    EXPECT_FALSE(eq.runOne(5));
    EXPECT_FALSE(ran);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.runOne(10));
    EXPECT_TRUE(ran);
}

// Cancellation tokens must not accumulate for ids that already
// executed (or never existed) — the token set stays bounded by the
// queue contents across arbitrarily long runs.
TEST(EventQueue, CancelTokensArePurged)
{
    sim::EventQueue eq;
    auto id = eq.schedule(1, [] {});
    eq.cancel(id);
    EXPECT_EQ(eq.cancelledTokens(), 1u);
    eq.cancel(id); // double-cancel folds into the same token
    EXPECT_EQ(eq.cancelledTokens(), 1u);
    eq.runUntil(5);
    EXPECT_EQ(eq.cancelledTokens(), 0u);

    auto id2 = eq.schedule(10, [] {});
    eq.runUntil(20);
    eq.cancel(id2); // already executed: must not leave a token
    eq.cancel(987654321); // unknown id: must not leave a token
    EXPECT_EQ(eq.cancelledTokens(), 0u);

    for (int round = 0; round < 100; ++round) {
        auto e = eq.scheduleIn(1, [] {});
        eq.runUntil(eq.now() + 2);
        eq.cancel(e); // always post-execution
    }
    EXPECT_EQ(eq.cancelledTokens(), 0u);
}

TEST(EventQueue, PendingCountsScheduled)
{
    sim::EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.runUntil();
    EXPECT_EQ(eq.pending(), 0u);
}

// FIFO ordering of same-tick, same-priority events is part of the
// determinism contract: every NoC delivery and controller tick relies
// on insertion order as the final tie-break, so any queue
// implementation (binary heap, d-ary heap, slab-indexed) must keep it.
TEST(EventQueue, SameTickFifoSurvivesCancellation)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(0); });
    auto b = eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(10, [&] { order.push_back(2); });
    eq.cancel(b);
    // Events scheduled after a same-tick cancellation must land after
    // the surviving earlier insertions.
    eq.schedule(10, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(4); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 4}));
}

TEST(EventQueue, CancelThenRescheduleAtSameTickKeepsFifo)
{
    // Cancel-then-reschedule from inside a callback running at that
    // very tick: the replacement goes to the back of the tick's queue.
    sim::EventQueue eq;
    std::vector<int> order;
    sim::EventQueue::EventId victim = 0;
    eq.schedule(5, [&] {
        order.push_back(0);
        eq.cancel(victim);
        eq.schedule(5, [&] { order.push_back(3); });
    });
    victim = eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(2); });
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3}));
}

TEST(EventQueue, InterleavedTicksKeepPerTickFifo)
{
    sim::EventQueue eq;
    std::vector<int> order;
    const sim::Tick ticks[] = {30, 10, 20, 10, 30, 20, 10};
    int tag = 0;
    for (sim::Tick t : ticks) {
        eq.schedule(t, [&order, tag] { order.push_back(tag); });
        ++tag;
    }
    eq.runUntil();
    // Per tick, insertion order; ticks ascend: 10:{1,3,6} 20:{2,5}
    // 30:{0,4}.
    EXPECT_EQ(order, (std::vector<int>{1, 3, 6, 2, 5, 0, 4}));
}

TEST(EventQueue, PriorityBreaksTiesBeforeFifo)
{
    sim::EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(0); }, sim::Priority::Stats);
    eq.schedule(10, [&] { order.push_back(1); },
                sim::Priority::NocTransfer);
    eq.schedule(10, [&] { order.push_back(2); }, sim::Priority::Default);
    eq.schedule(10, [&] { order.push_back(3); },
                sim::Priority::NocTransfer);
    eq.runUntil();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2, 0}));
}

// ----------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed)
{
    sim::Rng a(99), b(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    sim::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    sim::Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    sim::Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    sim::Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 500; ++i) {
        auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    sim::Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMean)
{
    sim::Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 2.0);
}

TEST(Rng, NormalMoments)
{
    sim::Rng rng(19);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements)
{
    sim::Rng rng(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIsIndependentStream)
{
    sim::Rng a(29);
    sim::Rng child = a.fork();
    EXPECT_NE(a(), child());
}

TEST(Rng, ChanceExtremes)
{
    sim::Rng rng(31);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

// --------------------------------------------------------------- stats

TEST(Summary, BasicMoments)
{
    sim::Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsZero)
{
    sim::Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeMatchesCombined)
{
    sim::Summary a, b, all;
    for (int i = 0; i < 50; ++i) {
        double x = i * 0.7;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    sim::Summary a, b;
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(Histogram, BinsAndOverflow)
{
    sim::Histogram h(0.0, 10.0, 5);
    h.add(-1.0); // underflow
    h.add(0.0);  // bin 0
    h.add(1.9);  // bin 0
    h.add(2.0);  // bin 1
    h.add(9.99); // bin 4
    h.add(10.0); // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 4.0);
}

TEST(Histogram, FormatMentionsCounts)
{
    sim::Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    std::string text = h.format();
    EXPECT_NE(text.find("1"), std::string::npos);
    EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(Histogram, InvalidConstructionFails)
{
    EXPECT_THROW(sim::Histogram(1.0, 1.0, 4), sim::PanicError);
    EXPECT_THROW(sim::Histogram(0.0, 1.0, 0), sim::PanicError);
}

TEST(Percentiles, ExactQuantiles)
{
    sim::Percentiles p;
    for (int i = 1; i <= 100; ++i)
        p.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(p.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(p.maximum(), 100.0);
    EXPECT_NEAR(p.median(), 50.5, 1e-9);
    EXPECT_NEAR(p.p95(), 95.05, 1e-9);
    EXPECT_NEAR(p.mean(), 50.5, 1e-9);
}

TEST(Percentiles, SingleSample)
{
    sim::Percentiles p;
    p.add(42.0);
    EXPECT_DOUBLE_EQ(p.median(), 42.0);
    EXPECT_DOUBLE_EQ(p.p99(), 42.0);
}

TEST(Percentiles, EmptyQuantilePanics)
{
    sim::Percentiles p;
    EXPECT_THROW(p.median(), sim::PanicError);
}

TEST(Percentiles, MergeOfSortedPartitionsMatchesSerial)
{
    // Sweep folds merge partitions that were often already queried
    // (hence sorted); the sorted-merge fast path must produce the same
    // quantiles and mean as feeding every sample serially.
    sim::Percentiles serial, a, b;
    const double xs[] = {9, 1, 4, 7, 2, 8, 0, 3, 6, 5};
    for (int i = 0; i < 10; ++i) {
        serial.add(xs[i]);
        (i < 5 ? a : b).add(xs[i]);
    }
    // Force both partitions sorted before merging.
    (void)a.median();
    (void)b.median();
    a.merge(b);
    EXPECT_EQ(a.count(), serial.count());
    EXPECT_DOUBLE_EQ(a.median(), serial.median());
    EXPECT_DOUBLE_EQ(a.p95(), serial.p95());
    EXPECT_DOUBLE_EQ(a.minimum(), serial.minimum());
    EXPECT_DOUBLE_EQ(a.maximum(), serial.maximum());
    EXPECT_DOUBLE_EQ(a.mean(), serial.mean());
}

TEST(Percentiles, AscendingAppendsStaySorted)
{
    // Appending in nondecreasing order (common for tick-ordered stat
    // sampling) must keep the accumulator consistent through repeated
    // quantile queries and further adds.
    sim::Percentiles p;
    p.reserve(6);
    for (double x : {1.0, 2.0, 2.0, 5.0})
        p.add(x);
    EXPECT_DOUBLE_EQ(p.median(), 2.0);
    p.add(9.0);
    p.add(11.0);
    EXPECT_DOUBLE_EQ(p.maximum(), 11.0);
    EXPECT_DOUBLE_EQ(p.median(), 3.5);
    EXPECT_DOUBLE_EQ(p.mean(), 30.0 / 6.0);
}

TEST(Percentiles, MergeIntoEmptyAndFromEmpty)
{
    sim::Percentiles empty, filled;
    filled.add(3.0);
    filled.add(1.0);
    filled.merge(empty); // no-op
    EXPECT_EQ(filled.count(), 2u);
    sim::Percentiles target;
    target.merge(filled);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.median(), 2.0);
    EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

// -------------------------------------------------------------- logging

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(sim::fatal("bad config: ", 42), sim::FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(sim::panic("invariant ", "broken"), sim::PanicError);
}

TEST(Logging, MessagesCarryContent)
{
    try {
        sim::fatal("value was ", 7);
        FAIL() << "fatal did not throw";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

TEST(Logging, AssertMacro)
{
    EXPECT_NO_THROW(BLITZ_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(BLITZ_ASSERT(1 + 1 == 3, "broken"), sim::PanicError);
}

} // namespace
