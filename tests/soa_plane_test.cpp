/**
 * @file
 * Property tests for the struct-of-arrays hot-state mirror
 * (coin::StatePlane): the packed columns written through by the units
 * and tiles must never diverge from the legacy object state, at any
 * audit-cadence checkpoint, through exchanges, packet loss, crashes,
 * restarts, and quarantines. The fused census must match a manual
 * walk of the same objects, and the SoC-level frequency column must
 * track every managed tile's UVFR target.
 */

#include <gtest/gtest.h>

#include "coin/state_plane.hpp"
#include "lossy_cluster.hpp"
#include "sim/rng.hpp"
#include "soc/pm_impl.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"

namespace {

using namespace blitz;
using blitz::testing::LossyCluster;
using blitz::testing::lossyConfig;

coin::TilePhase
expectedPhase(const blitzcoin::BlitzCoinUnit &u)
{
    if (u.quarantined())
        return coin::TilePhase::Quarantined;
    if (u.crashed())
        return coin::TilePhase::Crashed;
    if (u.running())
        return coin::TilePhase::Running;
    return coin::TilePhase::Idle;
}

/** Every hot column equals the legacy object state, tile by tile. */
void
expectMirrored(const coin::StatePlane &plane, LossyCluster &c,
               const char *when)
{
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        const auto &u = c.unit(i);
        EXPECT_EQ(plane.has(i), u.has()) << when << " tile " << i;
        EXPECT_EQ(plane.max(i), u.max()) << when << " tile " << i;
        EXPECT_EQ(plane.backoff(i), u.backoffInterval())
            << when << " tile " << i;
        EXPECT_EQ(plane.phase(i), expectedPhase(u))
            << when << " tile " << i;
    }
}

TEST(SoaPlane, MirrorsLegacyStateThroughLossyExchanges)
{
    // 10% packet loss maximizes the interesting paths: timeouts,
    // zero-delta resolutions, recovery replays — each adapts the
    // backoff timer through a different code path, and each must
    // write its row through.
    LossyCluster c(4, 0.10);
    coin::StatePlane plane(c.c.size());
    for (std::size_t i = 0; i < c.c.size(); ++i)
        c.unit(i).attachPlane(&plane);
    sim::Rng rng(99);
    for (std::size_t i = 0; i < c.c.size(); ++i)
        c.unit(i).setMax(rng.range(0, 40));
    c.unit(5).setHas(120);
    c.startAll();
    // Audit-cadence checkpoints: the mirror must hold at every one,
    // not just at quiescence.
    for (int step = 1; step <= 64; ++step) {
        c.eq().runUntil(static_cast<sim::Tick>(step) * 1024);
        expectMirrored(plane, c, "checkpoint");
        if (step % 16 == 0) // churn targets mid-flight
            c.unit(rng.below(16)).setMax(rng.range(0, 40));
    }
}

TEST(SoaPlane, MirrorsCrashRestartAndQuarantine)
{
    LossyCluster c(4, 0.0);
    coin::StatePlane plane(c.c.size());
    for (std::size_t i = 0; i < c.c.size(); ++i)
        c.unit(i).attachPlane(&plane);
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        c.unit(i).setMax(16);
        c.unit(i).setHas(8);
    }
    c.startAll();
    c.eq().runUntil(4096);
    expectMirrored(plane, c, "steady");

    // Crash wipes the registers; the row must follow immediately.
    c.unit(3).crash();
    EXPECT_EQ(plane.phase(3), coin::TilePhase::Crashed);
    EXPECT_EQ(plane.has(3), 0);
    expectMirrored(plane, c, "post-crash");

    c.eq().runUntil(8192);
    c.unit(3).restart();
    c.unit(3).setMax(16);
    c.unit(3).start();
    EXPECT_EQ(plane.phase(3), coin::TilePhase::Running);
    expectMirrored(plane, c, "post-restart");

    // Quarantine fences the counter in place and is sticky: it must
    // dominate a later crash in the phase column.
    c.unit(7).quarantine();
    EXPECT_EQ(plane.phase(7), coin::TilePhase::Quarantined);
    c.unit(7).crash();
    EXPECT_EQ(plane.phase(7), coin::TilePhase::Quarantined);
    c.eq().runUntil(16384);
    expectMirrored(plane, c, "post-quarantine");
}

TEST(SoaPlane, CensusMatchesManualWalk)
{
    LossyCluster c(4, 0.05);
    coin::StatePlane plane(c.c.size());
    for (std::size_t i = 0; i < c.c.size(); ++i)
        c.unit(i).attachPlane(&plane);
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        c.unit(i).setMax(16);
        c.unit(i).setHas(8);
    }
    c.startAll();
    c.eq().runUntil(4096);
    c.unit(1).crash();
    c.unit(6).quarantine();
    c.eq().runUntil(8192);

    auto census = plane.census();
    std::size_t crashed = 0, quarantined = 0;
    coin::Coins counted = 0;
    for (std::size_t i = 0; i < c.c.size(); ++i) {
        const auto &u = c.unit(i);
        if (u.quarantined())
            ++quarantined;
        else if (u.crashed())
            ++crashed;
        else
            counted += u.has();
    }
    EXPECT_EQ(census.crashed, crashed);
    EXPECT_EQ(census.quarantined, quarantined);
    EXPECT_EQ(census.counted, counted);
    EXPECT_EQ(plane.aliveCoins(), counted);
}

TEST(SoaPlane, SocFrequencyColumnTracksTileTargets)
{
    // Full-SoC integration: after a real workload run, every managed
    // row must equal the legacy unit state and the frequency column
    // must equal the tile's UVFR target programmed through the LUT.
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.budgetMw = 60.0;
    soc::Soc s(soc::make3x3AvSoc(), pm, 31);
    auto dag = soc::avDependent(s.config(), 2);
    auto st = s.run(dag);
    ASSERT_TRUE(st.completed);

    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    const coin::StatePlane &plane = bc.plane();
    for (noc::NodeId id : s.config().managedAccelerators()) {
        const auto &u = bc.unit(id);
        EXPECT_EQ(plane.has(id), u.has()) << "tile " << id;
        EXPECT_EQ(plane.max(id), u.max()) << "tile " << id;
        EXPECT_EQ(plane.backoff(id), u.backoffInterval())
            << "tile " << id;
        EXPECT_EQ(plane.phase(id), expectedPhase(u)) << "tile " << id;
        EXPECT_DOUBLE_EQ(plane.freqMhz(id),
                         s.tile(id).uvfr().targetMhz())
            << "tile " << id;
    }
    // Unmanaged rows stay neutral: zero coins, Idle phase, so plane
    // reductions over the full mesh need no managed-set filter.
    std::vector<bool> managed(s.config().size(), false);
    for (noc::NodeId id : s.config().managedAccelerators())
        managed[id] = true;
    for (noc::NodeId id = 0; id < s.config().size(); ++id) {
        if (managed[id])
            continue;
        EXPECT_EQ(plane.has(id), 0) << "unmanaged tile " << id;
        EXPECT_EQ(plane.phase(id), coin::TilePhase::Idle)
            << "unmanaged tile " << id;
    }
}

} // namespace
