/**
 * @file
 * Integration tests: full SoC runs under every power-management
 * strategy, checking the properties the paper's evaluation relies on.
 */

#include <gtest/gtest.h>

#include "soc/pm_impl.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"

namespace {

using namespace blitz;
using soc::PmConfig;
using soc::PmKind;
using soc::Soc;
using soc::SocRunStats;

PmConfig
pmConfig(PmKind kind, double budget)
{
    PmConfig pm;
    pm.kind = kind;
    pm.budgetMw = budget;
    return pm;
}

SocRunStats
runAv(PmKind kind, double budget, bool dependent,
      std::uint64_t seed = 11)
{
    Soc s(soc::make3x3AvSoc(), pmConfig(kind, budget), seed);
    workload::Dag dag = dependent ? soc::avDependent(s.config(), 2)
                                  : soc::avParallel(s.config());
    return s.run(dag);
}

/** Every strategy must complete the workload and respect the cap. */
class AllStrategies : public ::testing::TestWithParam<PmKind>
{};

TEST_P(AllStrategies, CompletesAndRespectsCap)
{
    SocRunStats st = runAv(GetParam(), 120.0, /*dependent=*/false);
    EXPECT_TRUE(st.completed);
    EXPECT_GT(st.execTime, 0u);
    // Budget respected: average under cap, transients bounded.
    EXPECT_LE(st.trace->averageTotalMw(), 120.0 * 1.02);
    EXPECT_LT(st.trace->capViolationFraction(0.10), 0.05);
}

TEST_P(AllStrategies, CompletesDependentWorkload)
{
    SocRunStats st = runAv(GetParam(), 60.0, /*dependent=*/true);
    EXPECT_TRUE(st.completed);
    EXPECT_LE(st.trace->averageTotalMw(), 60.0 * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllStrategies,
                         ::testing::Values(PmKind::BlitzCoin,
                                           PmKind::BlitzCoinCentral,
                                           PmKind::CentralRoundRobin,
                                           PmKind::StaticAlloc));

TEST(SocIntegration, BlitzCoinRespondsFasterThanCentral)
{
    auto bc = runAv(PmKind::BlitzCoin, 60.0, true);
    auto bcc = runAv(PmKind::BlitzCoinCentral, 60.0, true);
    auto crr = runAv(PmKind::CentralRoundRobin, 60.0, true);
    ASSERT_GT(bc.responseTicks.count(), 0u);
    ASSERT_GT(bcc.responseTicks.count(), 0u);
    ASSERT_GT(crr.responseTicks.count(), 0u);
    // Paper: 10.1x and 12.1x; require at least 3x in this short run.
    EXPECT_LT(bc.responseTicks.mean() * 3.0, bcc.responseTicks.mean());
    EXPECT_LT(bc.responseTicks.mean() * 3.0, crr.responseTicks.mean());
}

TEST(SocIntegration, ThroughputOrderingMatchesPaper)
{
    auto bc = runAv(PmKind::BlitzCoin, 60.0, true);
    auto bcc = runAv(PmKind::BlitzCoinCentral, 60.0, true);
    auto crr = runAv(PmKind::CentralRoundRobin, 60.0, true);
    // BC <= BC-C < C-RR execution time (Fig. 17 ordering).
    EXPECT_LE(bc.execTime, bcc.execTime);
    EXPECT_LT(bcc.execTime, crr.execTime);
    // And the gap to C-RR is substantial (paper: 25-34%).
    EXPECT_GT(static_cast<double>(crr.execTime) /
                  static_cast<double>(bc.execTime),
              1.10);
}

TEST(SocIntegration, RpBeatsApThroughput)
{
    // Section VI-A: RP gives 3.0-4.1% over AP on the 3x3 SoC.
    auto run = [](coin::AllocPolicy alloc) {
        PmConfig pm = pmConfig(PmKind::BlitzCoin, 120.0);
        pm.alloc = alloc;
        Soc s(soc::make3x3AvSoc(), pm, 13);
        auto dag = soc::avParallel(s.config());
        return s.run(dag).execTime;
    };
    auto rp = run(coin::AllocPolicy::RelativeProportional);
    auto ap = run(coin::AllocPolicy::AbsoluteProportional);
    EXPECT_LT(rp, ap);
}

TEST(SocIntegration, BlitzCoinBeatsStaticAllocation)
{
    // The silicon experiment (Fig. 19): ~27% over static allocation.
    auto bc = runAv(PmKind::BlitzCoin, 60.0, true);
    auto st = runAv(PmKind::StaticAlloc, 60.0, true);
    EXPECT_LT(bc.execTime, st.execTime);
}

TEST(SocIntegration, CoinsConservedThroughRun)
{
    PmConfig pm = pmConfig(PmKind::BlitzCoin, 120.0);
    Soc s(soc::make3x3AvSoc(), pm, 17);
    auto dag = soc::avDependent(s.config(), 2);
    s.run(dag);
    // After the run the distributed coin counts must still sum to the
    // pool: no transition created or destroyed coins.
    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    EXPECT_EQ(bc.clusterCoins(), bc.scale().poolCoins);
}

TEST(SocIntegration, Runs4x4VisionSoc)
{
    Soc s(soc::make4x4VisionSoc(),
          pmConfig(PmKind::BlitzCoin, soc::budgets::vision33Percent),
          19);
    auto dag = soc::visionDependent(s.config(), 1);
    auto st = s.run(dag);
    EXPECT_TRUE(st.completed);
    EXPECT_LE(st.trace->averageTotalMw(),
              soc::budgets::vision33Percent * 1.02);
}

TEST(SocIntegration, RunsSilicon6x6Workload)
{
    Soc s(soc::make6x6SiliconSoc(),
          pmConfig(PmKind::BlitzCoin, soc::budgets::silicon), 23);
    auto dag = soc::siliconWorkload(s.config(), 7);
    auto st = s.run(dag);
    EXPECT_TRUE(st.completed);
    // Fig. 19: high utilization under the cap.
    EXPECT_LE(st.trace->averageTotalMw(), soc::budgets::silicon);
    EXPECT_GT(st.trace->budgetUtilization(), 0.5);
}

TEST(SocIntegration, DeterministicForSeed)
{
    auto a = runAv(PmKind::BlitzCoin, 120.0, false, 42);
    auto b = runAv(PmKind::BlitzCoin, 120.0, false, 42);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.nocPackets, b.nocPackets);
}

TEST(SocIntegration, TraceCoversWholeRun)
{
    auto st = runAv(PmKind::BlitzCoin, 120.0, false);
    ASSERT_GT(st.trace->sampleCount(), 10u);
    EXPECT_GE(st.trace->samples().back().tick, st.execTime);
}

TEST(SocIntegration, PowerDropsAfterCompletion)
{
    auto st = runAv(PmKind::BlitzCoin, 120.0, false);
    ASSERT_TRUE(st.completed);
    // The trailing samples capture the post-workload decay toward the
    // idle floor.
    double final_power = st.trace->samples().back().totalMw;
    EXPECT_LT(final_power, st.trace->peakTotalMw() * 0.5);
}

TEST(SocIntegration, HigherBudgetRunsFaster)
{
    auto low = runAv(PmKind::BlitzCoin, 60.0, false);
    auto high = runAv(PmKind::BlitzCoin, 120.0, false);
    EXPECT_LT(high.execTime, low.execTime);
}

TEST(SocIntegration, TileAccessorValidatesNode)
{
    Soc s(soc::make3x3AvSoc(), pmConfig(PmKind::BlitzCoin, 120.0), 1);
    EXPECT_NO_THROW(s.tile(s.config().findTile("NVDLA")));
    EXPECT_THROW(s.tile(s.config().cpuTile), sim::PanicError);
}

TEST(SocIntegration, ZeroBudgetIsRejected)
{
    EXPECT_THROW(Soc(soc::make3x3AvSoc(),
                     pmConfig(PmKind::BlitzCoin, 0.0), 1),
                 sim::FatalError);
}

} // namespace
