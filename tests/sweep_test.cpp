/**
 * @file
 * Tests for the deterministic parallel sweep harness: the thread pool,
 * the splitmix64 stream derivation, and the bit-identical-for-any-
 * thread-count guarantee the benches rely on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "coin/engine.hpp"
#include "sim/stats.hpp"
#include "sweep/sweep.hpp"
#include "sweep/thread_pool.hpp"

namespace {

using namespace blitz;

// ---------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryJob)
{
    sweep::ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    sweep::ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{0};
    {
        sweep::ThreadPool pool(3);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroWorkersPanics)
{
    EXPECT_THROW(sweep::ThreadPool{0}, sim::PanicError);
}

// ------------------------------------------------------ stream derivation

TEST(StreamSeed, PureFunctionOfRootAndIndex)
{
    EXPECT_EQ(sweep::streamSeed(42, 7), sweep::streamSeed(42, 7));
    EXPECT_NE(sweep::streamSeed(42, 7), sweep::streamSeed(42, 8));
    EXPECT_NE(sweep::streamSeed(42, 7), sweep::streamSeed(43, 7));
}

TEST(StreamSeed, NoCollisionsOverAWideSweep)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        seen.insert(sweep::streamSeed(1, i));
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(StreamSeed, MatchesRngSeedExpansionQuality)
{
    // Streams must be usable directly as Rng seeds: distinct streams
    // give distinct sequences.
    sim::Rng a(sweep::streamSeed(5, 0));
    sim::Rng b(sweep::streamSeed(5, 1));
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a() == b()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

// -------------------------------------------------------------- runSweep

TEST(RunSweep, ResultsComeBackInIndexOrder)
{
    sweep::SweepOptions opts;
    opts.threads = 4;
    auto out = sweep::runSweep(
        64, 1,
        [](std::size_t i, std::uint64_t) { return 3 * i; }, opts);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * i);
}

TEST(RunSweep, ZeroReplicationsIsEmpty)
{
    auto out = sweep::runSweep(
        0, 1, [](std::size_t, std::uint64_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(RunSweep, PassesDerivedStreamSeeds)
{
    auto out = sweep::runSweep(
        8, 99, [](std::size_t, std::uint64_t seed) { return seed; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], sweep::streamSeed(99, i));
}

TEST(RunSweep, FirstExceptionPropagates)
{
    sweep::SweepOptions opts;
    opts.threads = 4;
    EXPECT_THROW(sweep::runSweep(
                     16, 1,
                     [](std::size_t i, std::uint64_t) {
                         if (i == 3)
                             throw std::runtime_error("trial failed");
                         return i;
                     },
                     opts),
                 std::runtime_error);
}

TEST(RunSweep, FoldRunsSeriallyInIndexOrder)
{
    sweep::SweepOptions opts;
    opts.threads = 8;
    std::vector<std::size_t> order;
    auto sum = sweep::runSweepFold<double>(
        32, 1,
        [](std::size_t i, std::uint64_t) {
            return static_cast<double>(i);
        },
        [&order](double &acc, double v, std::size_t i) {
            order.push_back(i);
            acc += v;
        },
        0.0, opts);
    EXPECT_DOUBLE_EQ(sum, 31.0 * 32.0 / 2.0);
    ASSERT_EQ(order.size(), 32u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(DefaultThreads, HonorsEnvironmentOverride)
{
    ASSERT_EQ(setenv("BLITZ_SWEEP_THREADS", "3", 1), 0);
    EXPECT_EQ(sweep::defaultThreads(), 3u);
    ASSERT_EQ(unsetenv("BLITZ_SWEEP_THREADS"), 0);
    EXPECT_GE(sweep::defaultThreads(), 1u);
}

// ------------------------------------------------ determinism guarantee

/** Aggregate a small Monte-Carlo mesh sweep at a given thread count. */
bench::TrialStats
meshSweepAt(std::size_t threads)
{
    bench::TrialSetup setup;
    setup.d = 4;
    sweep::SweepOptions opts;
    opts.threads = threads;
    coin::EngineConfig cfg;
    return bench::sweepParallel(setup, cfg, /*trials=*/12,
                                /*rootSeed=*/7, opts);
}

TEST(Determinism, AggregateStatsBitIdenticalAcrossThreadCounts)
{
    auto serial = meshSweepAt(1);
    for (std::size_t threads : {2u, 8u}) {
        auto parallel = meshSweepAt(threads);
        // Exact (bit-level) comparisons on purpose: the harness
        // guarantees identical floating-point accumulation order.
        EXPECT_EQ(serial.failures, parallel.failures);
        EXPECT_EQ(serial.timeCycles.count(), parallel.timeCycles.count());
        EXPECT_EQ(serial.timeCycles.mean(), parallel.timeCycles.mean());
        EXPECT_EQ(serial.timeCycles.median(), parallel.timeCycles.median());
        EXPECT_EQ(serial.timeCycles.p95(), parallel.timeCycles.p95());
        EXPECT_EQ(serial.packets.mean(), parallel.packets.mean());
        EXPECT_EQ(serial.startError.mean(), parallel.startError.mean());
        EXPECT_EQ(serial.startError.variance(),
                  parallel.startError.variance());
        EXPECT_EQ(serial.finalMaxError.mean(),
                  parallel.finalMaxError.mean());
        EXPECT_EQ(serial.finalMaxError.max(),
                  parallel.finalMaxError.max());
    }
}

TEST(Determinism, RepeatedRunsIdentical)
{
    auto a = meshSweepAt(4);
    auto b = meshSweepAt(4);
    EXPECT_EQ(a.timeCycles.mean(), b.timeCycles.mean());
    EXPECT_EQ(a.packets.mean(), b.packets.mean());
}

// ----------------------------------------------------------- stat merges

TEST(PercentilesMerge, ReproducesSerialSampleSequence)
{
    sim::Percentiles serial, a, b;
    for (int i = 0; i < 10; ++i) {
        double x = i * 1.5;
        serial.add(x);
        (i < 5 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), serial.count());
    EXPECT_EQ(a.median(), serial.median());
    EXPECT_EQ(a.p99(), serial.p99());
    EXPECT_EQ(a.mean(), serial.mean());
}

TEST(HistogramMerge, AddsCountsBinwise)
{
    sim::Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
    a.add(1.0);
    a.add(11.0); // overflow
    b.add(1.5);
    b.add(-1.0); // underflow
    a.merge(b);
    EXPECT_EQ(a.binCount(0), 2u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.total(), 4u);
}

TEST(HistogramMerge, MismatchedBinningPanics)
{
    sim::Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 4);
    EXPECT_THROW(a.merge(b), sim::PanicError);
}

} // namespace
