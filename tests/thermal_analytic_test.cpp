/**
 * @file
 * Differential test: the RC thermal model against its closed-form
 * solutions (the iblock discipline — validate every physics model
 * against an analytic reference before trusting it at scale; same
 * pattern as analytic_vs_sim_test.cpp).
 *
 * Single tile, constant power: the governing ODE
 *   dT/dt = (P + (T_amb - T)/R) / C
 * has the step response
 *   T(t) = T_amb + P·R·(1 − e^(−t/RC)).
 *
 * Two coupled tiles (equal R, C, conductance g, one powered): writing
 * u_i = T_i − T_amb and decomposing into sum σ = u0 + u1 and
 * difference δ = u0 − u1, the coupling cancels from σ and doubles in
 * δ, giving two independent first-order systems:
 *   σ(t) = P·R·(1 − e^(−t/RC))
 *   δ(t) = P·R/(1 + 2gR)·(1 − e^(−t(1+2gR)/RC))
 * so T0 = T_amb + (σ+δ)/2 and T1 = T_amb + (σ−δ)/2.
 *
 * Every comparison is asserted within 2% of the analytic prediction
 * (relative to the temperature *rise*, the strict normalization — at
 * the sampler cadence dt/τ ≈ 3e-4, the explicit-Euler error is far
 * inside the band).
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "power/thermal.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "soc/throttler.hpp"

namespace {

using namespace blitz;
using power::ThermalConfig;
using power::ThermalModel;
using power::ThermalNodeParams;

/** The SoC power-sampler cadence the model integrates on (ns). */
constexpr double kDtNs = 500.0;

/** Closed-form single-tile step response (°C). */
double
stepResponseC(double tNs, double powerMw, const ThermalConfig &cfg)
{
    const double tau = cfg.node.rCPerW * cfg.node.cJPerC; // seconds
    const double riseC = powerMw * 1e-3 * cfg.node.rCPerW;
    return cfg.ambientC + riseC * (1.0 - std::exp(-tNs * 1e-9 / tau));
}

/** Integrate @p model under constant power for @p durationNs. */
void
integrate(ThermalModel &model, const std::vector<double> &powerMw,
          double durationNs)
{
    const auto steps = static_cast<std::uint64_t>(durationNs / kDtNs);
    for (std::uint64_t i = 0; i < steps; ++i)
        model.step(kDtNs, powerMw.data());
}

TEST(ThermalAnalytic, StepResponseMatchesClosedFormWithin2Percent)
{
    const ThermalConfig cfg{}; // R = 300 °C/W, C = 5e-6 J/°C, τ = 1.5 ms
    const double powerMw = 60.0; // ΔT∞ = 18 °C
    const double tauNs = cfg.node.rCPerW * cfg.node.cJPerC * 1e9;
    const double riseC = powerMw * 1e-3 * cfg.node.rCPerW;

    ThermalModel model(1, cfg);
    const std::vector<double> p{powerMw};

    // Walk the transient and compare at every half-τ checkpoint out
    // to 5τ — the knee of the exponential, where discretization error
    // would show first.
    double elapsedNs = 0.0;
    for (int checkpoint = 1; checkpoint <= 10; ++checkpoint) {
        const double targetNs = 0.5 * tauNs * checkpoint;
        integrate(model, p, targetNs - elapsedNs);
        elapsedNs = kDtNs * static_cast<double>(model.steps());
        const double expected = stepResponseC(elapsedNs, powerMw, cfg);
        EXPECT_NEAR(model.temperatureC(0), expected, 0.02 * riseC)
            << "t = " << elapsedNs * 1e-6 << " ms";
    }
}

TEST(ThermalAnalytic, SteadyStateEqualsAmbientPlusPR)
{
    ThermalConfig cfg{};
    ThermalModel model(2, cfg);
    // Tile 1 gets a stiffer path (half the resistance, double the
    // capacity) via the per-tile override.
    ThermalNodeParams stiff;
    stiff.rCPerW = 150.0;
    stiff.cJPerC = 1e-5;
    model.setParams(1, stiff);

    const std::vector<double> p{60.0, 60.0};
    // 15τ of the slowest node: both transients are fully settled.
    integrate(model, p, 15.0 * cfg.node.rCPerW * cfg.node.cJPerC * 1e9);

    const double rise0 = 0.060 * cfg.node.rCPerW; // 18 °C
    const double rise1 = 0.060 * stiff.rCPerW;    // 9 °C
    EXPECT_NEAR(model.temperatureC(0), cfg.ambientC + rise0,
                0.02 * rise0);
    EXPECT_NEAR(model.temperatureC(1), cfg.ambientC + rise1,
                0.02 * rise1);
    EXPECT_NEAR(model.maxC(), model.temperatureC(0), 1e-9);
    EXPECT_NEAR(model.meanC(),
                (model.temperatureC(0) + model.temperatureC(1)) / 2.0,
                1e-9);
}

TEST(ThermalAnalytic, CoolingDecaysExponentially)
{
    const ThermalConfig cfg{};
    const double tau = cfg.node.rCPerW * cfg.node.cJPerC;
    ThermalModel model(1, cfg);
    model.reset(95.0);
    const std::vector<double> p{0.0};

    const double dropC = 95.0 - cfg.ambientC;
    integrate(model, p, 2.0 * tau * 1e9);
    const double elapsedS = kDtNs * 1e-9 *
                            static_cast<double>(model.steps());
    const double expected =
        cfg.ambientC + dropC * std::exp(-elapsedS / tau);
    EXPECT_NEAR(model.temperatureC(0), expected, 0.02 * dropC);
}

TEST(ThermalAnalytic, TwoTileCouplingMatchesSumDifferenceDecomposition)
{
    const ThermalConfig cfg{};
    const double R = cfg.node.rCPerW;
    const double C = cfg.node.cJPerC;
    // gR = 1: coupling as strong as the ambient path, so the
    // difference mode runs 3x faster than the sum mode — the regimes
    // are well separated and a sign error in the coupling term would
    // blow either mode far past 2%.
    const double g = 1.0 / R;
    const double powerMw = 60.0;
    const double pW = powerMw * 1e-3;

    ThermalModel model(2, cfg);
    model.addCoupling(0, 1, g);
    const std::vector<double> p{powerMw, 0.0};

    const double tauNs = R * C * 1e9;
    double elapsedNs = 0.0;
    for (int checkpoint = 1; checkpoint <= 10; ++checkpoint) {
        const double targetNs = 0.5 * tauNs * checkpoint;
        integrate(model, p, targetNs - elapsedNs);
        elapsedNs = kDtNs * static_cast<double>(model.steps());
        const double tS = elapsedNs * 1e-9;

        const double sigma = pW * R * (1.0 - std::exp(-tS / (R * C)));
        const double delta = pW * R / (1.0 + 2.0 * g * R) *
                             (1.0 - std::exp(-tS * (1.0 + 2.0 * g * R) /
                                             (R * C)));
        const double expected0 = cfg.ambientC + (sigma + delta) / 2.0;
        const double expected1 = cfg.ambientC + (sigma - delta) / 2.0;
        const double rise = pW * R;
        EXPECT_NEAR(model.temperatureC(0), expected0, 0.02 * rise)
            << "t = " << tS * 1e3 << " ms";
        EXPECT_NEAR(model.temperatureC(1), expected1, 0.02 * rise)
            << "t = " << tS * 1e3 << " ms";
    }
    // The powered tile must stay the hotter one throughout.
    EXPECT_GT(model.temperatureC(0), model.temperatureC(1));
}

TEST(ThermalAnalytic, EnergyConservationUnderCoupling)
{
    // The coupling only moves heat between junctions: with equal
    // capacities, the *sum* of the rises must match the uncoupled
    // single-system closed form exactly (σ decouples from g).
    const ThermalConfig cfg{};
    const double g = 2.0 / cfg.node.rCPerW;
    ThermalModel coupled(2, cfg);
    coupled.addCoupling(0, 1, g);
    const std::vector<double> p{60.0, 0.0};
    integrate(coupled, p, 3.0 * cfg.node.rCPerW * cfg.node.cJPerC * 1e9);

    const double elapsedNs = kDtNs * static_cast<double>(coupled.steps());
    const double sigma =
        stepResponseC(elapsedNs, 60.0, cfg) - cfg.ambientC;
    const double sumRise = (coupled.temperatureC(0) - cfg.ambientC) +
                           (coupled.temperatureC(1) - cfg.ambientC);
    EXPECT_NEAR(sumRise, sigma, 0.02 * sigma);
}

TEST(ThermalAnalytic, SocIntegrationRunsOnSamplerCadence)
{
    // End-to-end: an attached (but non-enforcing) physics plane steps
    // once per power-sampling interval and sees the workload's heat.
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.budgetMw = soc::budgets::av30Percent;
    soc::Soc s(soc::make3x3AvSoc(), pm, /*seed=*/7);

    soc::PhysicsConfig phys;
    phys.enforce = false;
    soc::PhysicsPlane plane(phys);
    s.attachPhysics(plane);

    const auto st = s.run(soc::avParallel(s.config()));
    EXPECT_TRUE(st.completed);
    EXPECT_GT(plane.steps(), 0u);
    // One step per sampleInterval (400 ticks), starting one interval
    // in: the count tracks the run length (the final partial interval
    // and the stop tick's event ordering allow a step of slack).
    const auto expectedSteps = s.eventQueue().now() / 400;
    EXPECT_GE(plane.steps() + 2, expectedSteps);
    EXPECT_LE(plane.steps(), expectedSteps + 1);
    // The workload dissipates tens of mW; junctions must have heated.
    EXPECT_GT(plane.thermal().maxC(), phys.thermal.ambientC);
    EXPECT_GE(plane.peakTempC(), plane.thermal().maxC());
    // Non-enforcing plane: the arbiter never engaged.
    EXPECT_EQ(plane.arbiter().engages(), 0u);
    EXPECT_EQ(plane.arbiter().throttledCount(), 0u);
}

} // namespace
