/**
 * @file
 * Property/invariant tests of the throttler arbiter and the physics
 * plane's interaction with the coin protocol.
 *
 * Arbiter contract (checked against a brute-force reference model
 * under randomized limit-source sequences): the effective cap is
 * always the minimum of all active sources; releases are order-safe
 * (LIFO, FIFO, or any interleaving restores the surviving minimum);
 * once every source clears, no stale cap remains; and the
 * changed-flag the arbiter returns is exactly the effective-cap delta
 * the reference model predicts.
 *
 * Protocol interaction: BlitzCoin must conserve coins exactly through
 * throttle/release cycles — the external limiter clamps frequencies
 * *after* the coin allocation, so the cluster total still equals the
 * seeded pool at the end of every run (the same ClusterAudit-style
 * assertion the byzantine suite pins).
 *
 * Every suite name starts with "Throttler" so the tsan preset's name
 * filter picks the whole file up.
 */

#include <algorithm>
#include <array>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "record/recorder.hpp"
#include "soc/pm_impl.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "soc/throttler.hpp"

namespace {

using namespace blitz;
using soc::kThrottleSourceCount;
using soc::kUncappedMhz;
using soc::PhysicsConfig;
using soc::PhysicsPlane;
using soc::PmConfig;
using soc::PmKind;
using soc::Soc;
using soc::ThrottleArbiter;
using soc::ThrottleSource;

// ------------------------------------------------------------- arbiter

/** Brute-force reference: the per-slot caps, recomputed from scratch. */
struct RefModel
{
    std::vector<std::array<double, kThrottleSourceCount>> cap;

    explicit RefModel(std::size_t tiles)
    {
        std::array<double, kThrottleSourceCount> clear;
        clear.fill(kUncappedMhz);
        cap.assign(tiles, clear);
    }

    double
    effective(std::size_t tile) const
    {
        double e = kUncappedMhz;
        for (double c : cap[tile])
            e = std::min(e, c);
        return e;
    }
};

TEST(ThrottlerArbiter, MinOfActiveCapsAlwaysWins)
{
    ThrottleArbiter arb(4);
    EXPECT_FALSE(arb.throttled(0));
    EXPECT_EQ(arb.effectiveCapMhz(0), kUncappedMhz);

    EXPECT_TRUE(arb.set(0, ThrottleSource::Thermal, 800.0));
    EXPECT_EQ(arb.effectiveCapMhz(0), 800.0);
    EXPECT_TRUE(arb.set(0, ThrottleSource::Rail, 500.0));
    EXPECT_EQ(arb.effectiveCapMhz(0), 500.0);
    // A higher cap from a third source does not move the minimum.
    EXPECT_FALSE(arb.set(0, ThrottleSource::BoardTdp, 650.0));
    EXPECT_EQ(arb.effectiveCapMhz(0), 500.0);
    EXPECT_EQ(arb.activeMask(0), 0b111u);

    // Releasing the binding source exposes the next-lowest.
    EXPECT_TRUE(arb.clear(0, ThrottleSource::Rail));
    EXPECT_EQ(arb.effectiveCapMhz(0), 650.0);
    // Releasing a non-binding source changes nothing.
    EXPECT_FALSE(arb.clear(0, ThrottleSource::Thermal));
    EXPECT_EQ(arb.effectiveCapMhz(0), 650.0);
    EXPECT_TRUE(arb.clear(0, ThrottleSource::BoardTdp));
    EXPECT_EQ(arb.effectiveCapMhz(0), kUncappedMhz);
    EXPECT_FALSE(arb.throttled(0));
    EXPECT_EQ(arb.activeMask(0), 0u);

    // Other tiles were never touched.
    for (std::size_t t = 1; t < arb.tiles(); ++t)
        EXPECT_FALSE(arb.throttled(t));
}

TEST(ThrottlerArbiter, ReleaseOrderIsIrrelevant)
{
    // Engage three sources, then release in every one of the six
    // possible orders: after each partial release the effective cap
    // must equal the minimum of the survivors (LIFO-safety is the
    // special case k = engage order reversed).
    const std::array<ThrottleSource, 3> sources{
        ThrottleSource::Thermal, ThrottleSource::Rail,
        ThrottleSource::BoardTdp};
    const std::array<double, 3> caps{700.0, 450.0, 900.0};

    std::array<std::size_t, 3> order{0, 1, 2};
    do {
        ThrottleArbiter arb(1);
        for (std::size_t i = 0; i < 3; ++i)
            arb.set(0, sources[i], caps[i]);
        EXPECT_EQ(arb.effectiveCapMhz(0), 450.0);

        std::array<bool, 3> released{false, false, false};
        for (std::size_t k : order) {
            arb.clear(0, sources[k]);
            released[k] = true;
            double survivor = kUncappedMhz;
            for (std::size_t i = 0; i < 3; ++i) {
                if (!released[i])
                    survivor = std::min(survivor, caps[i]);
            }
            EXPECT_EQ(arb.effectiveCapMhz(0), survivor);
        }
        EXPECT_FALSE(arb.throttled(0)) << "stale cap after all cleared";
    } while (std::next_permutation(order.begin(), order.end()));
}

TEST(ThrottlerArbiter, RandomizedSequencesMatchBruteForceModel)
{
    constexpr std::size_t kTiles = 8;
    constexpr int kOps = 20'000;
    ThrottleArbiter arb(kTiles);
    RefModel ref(kTiles);
    std::mt19937_64 rng(0xb117c01u);
    std::uniform_int_distribution<std::size_t> tileDist(0, kTiles - 1);
    std::uniform_int_distribution<int> srcDist(0, 2);
    std::uniform_int_distribution<int> opDist(0, 2);
    // A small discrete cap alphabet maximizes min-collisions, the
    // interesting arbitration case.
    const std::array<double, 4> capAlphabet{200.0, 400.0, 400.0, 800.0};
    std::uniform_int_distribution<std::size_t> capDist(
        0, capAlphabet.size() - 1);

    for (int op = 0; op < kOps; ++op) {
        const std::size_t tile = tileDist(rng);
        const auto src = static_cast<ThrottleSource>(srcDist(rng));
        const double before = ref.effective(tile);
        bool changed;
        if (opDist(rng) == 0) {
            changed = arb.clear(tile, src);
            ref.cap[tile][static_cast<std::size_t>(src)] = kUncappedMhz;
        } else {
            const double cap = capAlphabet[capDist(rng)];
            changed = arb.set(tile, src, cap);
            ref.cap[tile][static_cast<std::size_t>(src)] = cap;
        }
        const double expected = ref.effective(tile);
        ASSERT_EQ(arb.effectiveCapMhz(tile), expected) << "op " << op;
        ASSERT_EQ(changed, expected != before) << "op " << op;
        ASSERT_EQ(arb.throttled(tile), expected != kUncappedMhz);
    }
    // Global postconditions against the reference.
    std::size_t refThrottled = 0;
    for (std::size_t t = 0; t < kTiles; ++t) {
        unsigned mask = 0;
        for (std::size_t s = 0; s < kThrottleSourceCount; ++s) {
            if (ref.cap[t][s] != kUncappedMhz)
                mask |= 1u << s;
        }
        EXPECT_EQ(arb.activeMask(t), mask);
        refThrottled += ref.effective(t) != kUncappedMhz ? 1 : 0;
    }
    EXPECT_EQ(arb.throttledCount(), refThrottled);

    // Drain everything: no stale caps may survive a full clear, and
    // lifetime releases must balance lifetime engages.
    for (std::size_t t = 0; t < kTiles; ++t) {
        for (std::size_t s = 0; s < kThrottleSourceCount; ++s)
            arb.clear(t, static_cast<ThrottleSource>(s));
        EXPECT_EQ(arb.effectiveCapMhz(t), kUncappedMhz);
        EXPECT_EQ(arb.activeMask(t), 0u);
    }
    EXPECT_EQ(arb.throttledCount(), 0u);
    EXPECT_EQ(arb.engages(), arb.releases());
}

// ------------------------------------------------- soc-level invariants

PmConfig
bcConfig(double budget)
{
    PmConfig pm;
    pm.kind = PmKind::BlitzCoin;
    pm.budgetMw = budget;
    return pm;
}

/**
 * Physics tuned to cycle during a sub-millisecond run: a fast thermal
 * path (tau = 300 us) and a trip band just above the budgeted
 * steady-state temperature, so tiles heat into the trip, cool under
 * the cap, release, and repeat.
 */
PhysicsConfig
cyclingThermalConfig()
{
    PhysicsConfig phys;
    phys.thermal.node.cJPerC = 1e-6; // tau = 300 us
    phys.trip.tripC = 48.0;
    phys.trip.releaseC = 47.5;
    phys.trip.capFraction = 0.4;
    return phys;
}

TEST(ThrottlerSoc, CoinsConservedThroughThrottleReleaseCycles)
{
    Soc s(soc::make3x3AvSoc(), bcConfig(soc::budgets::av30Percent),
          /*seed=*/29);
    PhysicsPlane plane(cyclingThermalConfig());
    s.attachPhysics(plane);

    const auto st = s.run(soc::avParallel(s.config()));
    EXPECT_TRUE(st.completed);
    // The scenario must actually exercise throttle/release cycles.
    EXPECT_GT(plane.arbiter().engages(), 0u);
    EXPECT_GT(plane.arbiter().releases(), 0u);

    // Exact conservation: the external throttler clamped frequencies,
    // never coins — the distributed counts still sum to the pool.
    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    EXPECT_EQ(bc.clusterCoins(), bc.scale().poolCoins);
}

TEST(ThrottlerSoc, ThrottledRunIsSlowerButStillCompletes)
{
    auto runUs = [](bool physics) {
        Soc s(soc::make3x3AvSoc(), bcConfig(soc::budgets::av30Percent),
              /*seed=*/29);
        PhysicsPlane plane(cyclingThermalConfig());
        if (physics)
            s.attachPhysics(plane);
        const auto st = s.run(soc::avParallel(s.config()));
        EXPECT_TRUE(st.completed);
        return st.execTimeUs();
    };
    const double unthrottled = runUs(false);
    const double throttled = runUs(true);
    EXPECT_GE(throttled, unthrottled);
}

TEST(ThrottlerSoc, RailBrownoutEngagesAndConservesCoins)
{
    // One shared rail over every accelerator, its limit below the
    // budget's current draw, with a droop injected at the latch: the
    // brownout clamps the members and sags their supplies, and the
    // coin economy still balances exactly.
    PhysicsConfig phys;
    power::RailConfig rail;
    rail.vNominal = 0.85;
    rail.limitMa = 90.0; // 120 mW budget / 0.85 V = ~141 mA demand
    rail.releaseFraction = 0.6;
    soc::RailSpec spec;
    spec.rail = rail;
    spec.capFraction = 0.4;
    spec.droopV = 0.05;
    phys.rails.push_back(spec);

    Soc s(soc::make3x3AvSoc(), bcConfig(soc::budgets::av30Percent),
          /*seed=*/31);
    PhysicsPlane plane(phys);
    s.attachPhysics(plane);

    const auto st = s.run(soc::avParallel(s.config()));
    EXPECT_TRUE(st.completed);
    EXPECT_GT(plane.rails().engageCount(0), 0u);
    EXPECT_GT(plane.rails().peakMa(0), rail.limitMa);
    EXPECT_GT(plane.arbiter().engages(), 0u);

    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    EXPECT_EQ(bc.clusterCoins(), bc.scale().poolCoins);
}

TEST(ThrottlerSoc, BoardTdpClampsEveryTileAndConservesCoins)
{
    PhysicsConfig phys;
    phys.board.limitMw = 90.0; // under the 120 mW budget
    phys.board.releaseFraction = 0.5;
    phys.board.capFraction = 0.5;

    Soc s(soc::make3x3AvSoc(), bcConfig(soc::budgets::av30Percent),
          /*seed=*/37);
    PhysicsPlane plane(phys);
    s.attachPhysics(plane);

    const auto st = s.run(soc::avParallel(s.config()));
    EXPECT_TRUE(st.completed);
    EXPECT_GT(plane.arbiter().engages(), 0u);
    // The board source fans out to every accelerator at once.
    EXPECT_EQ(plane.arbiter().engages() % 6, 0u);

    auto &bc = dynamic_cast<soc::BlitzCoinPm &>(s.pm());
    EXPECT_EQ(bc.clusterCoins(), bc.scale().poolCoins);
}

TEST(ThrottlerSoc, ThrottleJournalMatchesArbiterCounters)
{
    Soc s(soc::make3x3AvSoc(), bcConfig(soc::budgets::av30Percent),
          /*seed=*/29);
    PhysicsPlane plane(cyclingThermalConfig());
    s.attachPhysics(plane);
    record::FlightRecorder rec;
    s.attachRecorder(&rec);

    s.run(soc::avParallel(s.config()));
    ASSERT_GT(plane.arbiter().engages(), 0u);

    // Scan the journal: per (tile, source) the stream must alternate
    // engage/release starting with an engage, engage records carry a
    // positive cap with effective <= cap, release records a zero cap.
    std::uint64_t engages = 0;
    std::uint64_t releases = 0;
    std::array<std::array<bool, kThrottleSourceCount>, 9> active{};
    for (std::size_t i = 0; i < rec.size(); ++i) {
        const record::Record &r = rec.at(i);
        if (r.kind != record::RecordKind::Throttle)
            continue;
        const auto tile = static_cast<std::size_t>(r.p0);
        const auto src = static_cast<std::size_t>(r.aux);
        ASSERT_LT(tile, active.size());
        ASSERT_LT(src, kThrottleSourceCount);
        if (r.flag == record::kThrottleEngage) {
            ++engages;
            EXPECT_FALSE(active[tile][src]) << "double engage at " << i;
            active[tile][src] = true;
            EXPECT_GT(r.p1, 0) << "engage with no cap at " << i;
            EXPECT_LE(r.p2, r.p1) << "effective above cap at " << i;
            EXPECT_NE(r.p3, 0) << "engage with empty mask at " << i;
        } else {
            ASSERT_EQ(r.flag, record::kThrottleRelease);
            ++releases;
            EXPECT_TRUE(active[tile][src]) << "release w/o engage at "
                                           << i;
            active[tile][src] = false;
            EXPECT_EQ(r.p1, 0) << "release with a cap at " << i;
        }
    }
    EXPECT_EQ(engages, plane.arbiter().engages());
    EXPECT_EQ(releases, plane.arbiter().releases());
}

} // namespace
