/**
 * @file
 * Tests for the accelerator tile: UVFR-clocked execution and power.
 */

#include <gtest/gtest.h>

#include "soc/tile.hpp"

namespace {

using namespace blitz;
using soc::AcceleratorTile;

struct TileFixture : ::testing::Test
{
    sim::EventQueue eq;
    AcceleratorTile tile{eq, 0, "FFT", power::catalog::fft()};

    /** Run until the UVFR loop has clearly settled. */
    void
    settle()
    {
        eq.runUntil(eq.now() + 4000);
    }
};

TEST_F(TileFixture, ReachesFrequencyTarget)
{
    tile.setFreqTargetMhz(600.0);
    settle();
    EXPECT_NEAR(tile.freqMhz(), 600.0, 30.0);
}

TEST_F(TileFixture, TaskDurationMatchesFrequency)
{
    tile.setFreqTargetMhz(800.0);
    settle();
    // 80000 tile cycles at 800 MHz = 100 us = 80000 NoC ticks.
    sim::Tick done_at = 0;
    sim::Tick start = eq.now();
    tile.beginTask(80000.0, [&] { done_at = eq.now(); });
    eq.runUntil(start + 200000);
    ASSERT_GT(done_at, 0u);
    // Allow a little slack for residual regulator quantization.
    EXPECT_NEAR(static_cast<double>(done_at - start), 80000.0,
                8000.0);
}

TEST_F(TileFixture, HalfFrequencyDoublesDuration)
{
    tile.setFreqTargetMhz(400.0);
    settle();
    bool done = false;
    sim::Tick start = eq.now();
    tile.beginTask(80000.0, [&] { done = true; });
    while (!done && eq.now() < start + 400000)
        eq.runOne();
    EXPECT_TRUE(done);
    double duration = static_cast<double>(eq.now() - start);
    EXPECT_NEAR(duration, 160000.0, 16000.0);
}

TEST_F(TileFixture, SpeedChangeMidTaskStretchesCorrectly)
{
    tile.setFreqTargetMhz(800.0);
    settle();
    bool done = false;
    sim::Tick start = eq.now();
    tile.beginTask(80000.0, [&] { done = true; });
    // Halfway through, drop to half speed.
    eq.runUntil(start + 40000);
    tile.setFreqTargetMhz(400.0);
    while (!done && eq.now() < start + 400000)
        eq.runOne();
    EXPECT_TRUE(done);
    // 50% at full speed (40k ticks) + 50% at half speed (~80k ticks).
    EXPECT_NEAR(static_cast<double>(eq.now() - start), 120000.0,
                15000.0);
}

TEST_F(TileFixture, ZeroFrequencyStallsTask)
{
    tile.setFreqTargetMhz(0.0);
    settle();
    bool done = false;
    tile.beginTask(1000.0, [&] { done = true; });
    eq.runUntil(eq.now() + 100000);
    EXPECT_FALSE(done);
    EXPECT_TRUE(tile.busy());
    // Granting frequency resumes execution.
    tile.setFreqTargetMhz(800.0);
    eq.runUntil(eq.now() + 50000);
    EXPECT_TRUE(done);
}

TEST_F(TileFixture, BusyWhileExecuting)
{
    tile.setFreqTargetMhz(800.0);
    settle();
    EXPECT_FALSE(tile.busy());
    bool done = false;
    tile.beginTask(10000.0, [&] { done = true; });
    EXPECT_TRUE(tile.busy());
    eq.runUntil(eq.now() + 100000);
    EXPECT_TRUE(done);
    EXPECT_FALSE(tile.busy());
}

TEST_F(TileFixture, DoubleBeginPanics)
{
    tile.setFreqTargetMhz(800.0);
    tile.beginTask(1000.0, [] {});
    EXPECT_THROW(tile.beginTask(1000.0, [] {}), sim::PanicError);
}

TEST_F(TileFixture, IdlePowerIsNearFloor)
{
    tile.setFreqTargetMhz(0.0);
    settle();
    EXPECT_FALSE(tile.busy());
    EXPECT_LE(tile.powerMw(), power::catalog::fft().pIdle() + 0.5);
}

TEST_F(TileFixture, ActivePowerMatchesCurve)
{
    tile.setFreqTargetMhz(800.0);
    settle();
    bool done = false;
    tile.beginTask(1e9, [&] { done = true; });
    EXPECT_NEAR(tile.powerMw(),
                power::catalog::fft().powerAt(tile.freqMhz()), 1e-9);
    EXPECT_FALSE(done);
}

TEST_F(TileFixture, IdleTileBurnsLessThanActive)
{
    tile.setFreqTargetMhz(800.0);
    settle();
    double idle = tile.powerMw();
    tile.beginTask(1e9, [] {});
    double active = tile.powerMw();
    EXPECT_LT(idle, active * 0.5);
}

TEST_F(TileFixture, CyclesExecutedAccumulate)
{
    tile.setFreqTargetMhz(800.0);
    settle();
    bool done = false;
    tile.beginTask(50000.0, [&] { done = true; });
    eq.runUntil(eq.now() + 200000);
    ASSERT_TRUE(done);
    EXPECT_NEAR(tile.totalCyclesExecuted(), 50000.0, 50.0);
}

TEST_F(TileFixture, VoltageFollowsFrequency)
{
    tile.setFreqTargetMhz(800.0);
    settle();
    double v_high = tile.voltage();
    tile.setFreqTargetMhz(250.0);
    settle();
    EXPECT_LT(tile.voltage(), v_high);
}

} // namespace
