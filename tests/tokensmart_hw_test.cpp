/**
 * @file
 * Tests for the packet-accurate TokenSmart ring.
 */

#include <gtest/gtest.h>

#include "baselines/tokensmart_hw.hpp"

namespace {

using namespace blitz;
using baselines::TokenSmartHwConfig;
using baselines::TokenSmartHwRing;
using baselines::TsMode;

struct HwRing : ::testing::Test
{
    sim::EventQueue eq;
    noc::Topology topo{4, 4, false};
    noc::Network net{eq, topo};
    TokenSmartHwRing ring{eq, net};
};

TEST_F(HwRing, BoustrophedonCoversAllTiles)
{
    EXPECT_EQ(ring.size(), 16u);
}

TEST_F(HwRing, GreedySatisfiesWhenSupplySuffices)
{
    for (std::size_t i = 0; i < 16; ++i)
        ring.setMax(i, 4);
    ring.seedPool(64);
    ring.start();
    eq.runUntil(2000);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(ring.has(i), 4) << "tile " << i;
    EXPECT_EQ(ring.mode(), TsMode::Greedy);
    EXPECT_EQ(ring.totalTokens(), 64);
}

TEST_F(HwRing, StarvationFlipsToFairMode)
{
    for (std::size_t i = 0; i < 16; ++i)
        ring.setMax(i, 16);
    ring.seedPool(64); // a quarter of the demand
    ring.start();
    // Greedy hoards at the ring head, the tail starves, the policy
    // flips to fair and equalizes — then may oscillate back (the
    // outlier mechanism of Fig. 4). Poll for the fair episode instead
    // of sampling one instant.
    bool saw_fair = false;
    bool saw_equalized = false;
    for (int k = 0; k < 200; ++k) {
        eq.runUntil(eq.now() + 100);
        saw_fair = saw_fair || ring.mode() == TsMode::Fair;
        saw_equalized = saw_equalized || ring.globalError() < 1.0;
    }
    EXPECT_TRUE(saw_fair);
    EXPECT_TRUE(saw_equalized);
    EXPECT_EQ(ring.totalTokens(), 64);
}

TEST_F(HwRing, InactiveTilesRelinquish)
{
    for (std::size_t i = 0; i < 16; ++i) {
        ring.setMax(i, 4);
        ring.setHas(i, 4);
    }
    ring.setMax(3, 0); // task ends; tokens return to the pool
    ring.start();
    eq.runUntil(2000);
    EXPECT_EQ(ring.has(3), 0);
    EXPECT_EQ(ring.totalTokens(), 64);
}

TEST_F(HwRing, ConservationThroughChurn)
{
    sim::Rng rng(7);
    for (std::size_t i = 0; i < 16; ++i) {
        ring.setMax(i, rng.range(0, 16));
        ring.setHas(i, rng.range(0, 8));
    }
    ring.seedPool(20);
    const coin::Coins total = ring.totalTokens();
    ring.start();
    for (int round = 0; round < 10; ++round) {
        eq.runUntil(eq.now() + 1000);
        ring.setMax(rng.below(16), rng.range(0, 16));
        ASSERT_EQ(ring.totalTokens(), total);
    }
}

TEST_F(HwRing, PoolHopsAreSingleMeshHops)
{
    for (std::size_t i = 0; i < 16; ++i)
        ring.setMax(i, 4);
    ring.seedPool(64);
    ring.start();
    eq.runUntil(2000);
    // hops == NoC sends; boustrophedon means totalHops == sends except
    // for the single wrap-back from the last to the first tile.
    EXPECT_GE(net.totalHops(), ring.hops());
    EXPECT_LT(static_cast<double>(net.totalHops()),
              static_cast<double>(ring.hops()) * 1.3);
}

TEST_F(HwRing, DistributionTimeScalesLinearly)
{
    // O(N): the pool must visit every tile sequentially, so fully
    // distributing a fresh pool takes one loop ~ N (hop + FSM) cycles.
    auto distribute = [](int d) {
        sim::EventQueue eq;
        noc::Network net(eq, noc::Topology(d, d, false));
        TokenSmartHwRing ring(eq, net);
        const std::size_t n = static_cast<std::size_t>(d) * d;
        for (std::size_t i = 0; i < n; ++i)
            ring.setMax(i, 4);
        ring.seedPool(static_cast<coin::Coins>(4 * n));
        ring.start();
        sim::Tick t0 = eq.now();
        // Distributed = every tile reached its target (the on-tile
        // Err metric reads 0 while the tokens still ride the pool).
        auto all_fed = [&ring, n] {
            for (std::size_t i = 0; i < n; ++i) {
                if (ring.has(i) < 4)
                    return false;
            }
            return true;
        };
        while (eq.now() < t0 + 1'000'000 && !all_fed())
            eq.runUntil(eq.now() + 20);
        return eq.now() - t0;
    };
    auto t4 = distribute(4);  // N = 16
    auto t8 = distribute(8);  // N = 64
    EXPECT_GT(static_cast<double>(t8),
              2.5 * static_cast<double>(t4)); // ~4x expected
}

} // namespace
