/**
 * @file
 * Tests for the TokenSmart ring baseline.
 */

#include <gtest/gtest.h>

#include "baselines/tokensmart.hpp"
#include "coin/engine.hpp"

namespace {

using namespace blitz;
using baselines::TokenSmartConfig;
using baselines::TokenSmartSim;
using baselines::TsMode;

TEST(TokenSmart, ConvergesHomogeneous)
{
    TokenSmartSim ts(16, TokenSmartConfig{}, 1);
    for (std::size_t i = 0; i < 16; ++i)
        ts.setMax(i, 16);
    ts.randomizeHas(128); // half demand
    auto r = ts.runUntilConverged(1.0, sim::msToTicks(10.0));
    EXPECT_TRUE(r.converged);
    // Convergence is on the *mean* error at first crossing; single
    // tiles can still sit several tokens off because the greedy/fair
    // oscillation keeps TS noisier than BlitzCoin (the Fig. 4
    // observation).
    EXPECT_LT(ts.ledger().globalError(), 1.0);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_NEAR(static_cast<double>(ts.ledger().has(i)), 8.0, 7.0);
}

TEST(TokenSmart, ConservesTokensWithCarrier)
{
    TokenSmartSim ts(9, TokenSmartConfig{}, 2);
    for (std::size_t i = 0; i < 9; ++i)
        ts.setMax(i, 10);
    ts.randomizeHas(50);
    // ledger + carrier pool must always hold exactly 50.
    ts.runUntilConverged(1.0, sim::msToTicks(5.0));
    coin::Coins on_tiles = ts.ledger().totalHas();
    EXPECT_LE(on_tiles, 50);
    // Demand exceeds supply, so tiles absorb (nearly) everything; the
    // integer fair-share floor can strand up to one token per tile
    // with the carrier.
    EXPECT_GE(on_tiles, 50 - 9);
}

TEST(TokenSmart, GreedyHoardingTriggersFairMode)
{
    // Demand far exceeds supply: greedy starves the tail tiles and
    // the policy must flip to fair within a few loops.
    TokenSmartSim ts(8, TokenSmartConfig{}, 3);
    for (std::size_t i = 0; i < 8; ++i)
        ts.setMax(i, 60);
    ts.setHas(0, 100); // all tokens parked at the ring head
    auto r = ts.runUntilConverged(2.0, sim::msToTicks(10.0));
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(ts.mode(), TsMode::Fair);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_NEAR(static_cast<double>(ts.ledger().has(i)), 12.5, 2.0);
}

TEST(TokenSmart, SupplyMeetsDemandStaysGreedy)
{
    TokenSmartSim ts(6, TokenSmartConfig{}, 4);
    for (std::size_t i = 0; i < 6; ++i)
        ts.setMax(i, 10);
    ts.setHas(0, 60); // exactly enough for everyone
    auto r = ts.runUntilConverged(0.5, sim::msToTicks(5.0));
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(ts.mode(), TsMode::Greedy);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(ts.ledger().has(i), 10);
}

TEST(TokenSmart, ActivityChangeResetsPolicy)
{
    TokenSmartSim ts(8, TokenSmartConfig{}, 5);
    for (std::size_t i = 0; i < 8; ++i)
        ts.setMax(i, 60);
    ts.setHas(0, 100);
    ts.runUntilConverged(2.0, sim::msToTicks(10.0));
    ASSERT_EQ(ts.mode(), TsMode::Fair);
    ts.setMax(3, 0);
    EXPECT_EQ(ts.mode(), TsMode::Greedy);
}

TEST(TokenSmart, LinearScalingVsBlitzCoinSqrt)
{
    // The Fig. 4 headline: TS convergence grows ~linearly in N while
    // BlitzCoin grows ~sqrt(N); at N=400 the paper reports ~11x.
    auto ts_time = [](std::size_t n, std::uint64_t seed) {
        TokenSmartSim ts(n, TokenSmartConfig{}, seed);
        for (std::size_t i = 0; i < n; ++i)
            ts.setMax(i, 16);
        ts.randomizeHas(static_cast<coin::Coins>(8 * n));
        auto r = ts.runUntilConverged(1.5, sim::msToTicks(100.0));
        EXPECT_TRUE(r.converged);
        return static_cast<double>(r.time);
    };
    auto bc_time = [](int d, std::uint64_t seed) {
        coin::EngineConfig cfg;
        cfg.wrap = true;
        coin::MeshSim bc(noc::Topology::square(d), cfg, seed);
        for (std::size_t i = 0; i < bc.ledger().size(); ++i)
            bc.setMax(i, 16);
        bc.randomizeHas(static_cast<coin::Coins>(8 * d * d));
        auto r = bc.runUntilConverged(1.5, sim::msToTicks(100.0));
        EXPECT_TRUE(r.converged);
        return static_cast<double>(r.time);
    };

    double ts400 = 0, bc400 = 0;
    for (std::uint64_t s = 1; s <= 3; ++s) {
        ts400 += ts_time(400, s);
        bc400 += bc_time(20, s);
    }
    // BlitzCoin should converge several times faster at N = 400.
    EXPECT_GT(ts400 / bc400, 3.0);
}

TEST(TokenSmart, InvalidConfigPanics)
{
    TokenSmartConfig bad;
    bad.visitCycles = 0;
    EXPECT_THROW(TokenSmartSim(4, bad, 1), sim::PanicError);
}

} // namespace
