/**
 * @file
 * Unit and property tests for mesh/torus topology arithmetic.
 */

#include <gtest/gtest.h>

#include "noc/topology.hpp"
#include "sim/logging.hpp"
#include "sim/rng.hpp"

namespace {

using namespace blitz;
using noc::Coord;
using noc::Dir;
using noc::Topology;

TEST(Topology, CoordinateRoundTrip)
{
    Topology t(4, 3);
    EXPECT_EQ(t.size(), 12u);
    for (noc::NodeId id = 0; id < t.size(); ++id)
        EXPECT_EQ(t.idOf(t.coordOf(id)), id);
    EXPECT_EQ(t.coordOf(0), (Coord{0, 0}));
    EXPECT_EQ(t.coordOf(5), (Coord{1, 1}));
    EXPECT_EQ(t.coordOf(11), (Coord{3, 2}));
}

TEST(Topology, MeshEdgeHasNoNeighbor)
{
    Topology t(3, 3, /*wrap=*/false);
    EXPECT_FALSE(t.neighbor(0, Dir::North).has_value());
    EXPECT_FALSE(t.neighbor(0, Dir::West).has_value());
    EXPECT_EQ(t.neighbor(0, Dir::East), 1u);
    EXPECT_EQ(t.neighbor(0, Dir::South), 3u);
    EXPECT_FALSE(t.neighbor(8, Dir::South).has_value());
    EXPECT_FALSE(t.neighbor(8, Dir::East).has_value());
}

TEST(Topology, TorusWrapsAround)
{
    Topology t(3, 3, /*wrap=*/true);
    // Fig. 5: tile 0's neighbors are 1, 3 and the wrapped 2, 6.
    EXPECT_EQ(t.neighbor(0, Dir::West), 2u);
    EXPECT_EQ(t.neighbor(0, Dir::North), 6u);
    auto n = t.neighbors(0);
    EXPECT_EQ(n.size(), 4u);
    EXPECT_NE(std::find(n.begin(), n.end(), 1u), n.end());
    EXPECT_NE(std::find(n.begin(), n.end(), 2u), n.end());
    EXPECT_NE(std::find(n.begin(), n.end(), 3u), n.end());
    EXPECT_NE(std::find(n.begin(), n.end(), 6u), n.end());
}

TEST(Topology, CornerTileNeighborCounts)
{
    Topology mesh(4, 4, false);
    EXPECT_EQ(mesh.neighbors(0).size(), 2u);  // corner
    EXPECT_EQ(mesh.neighbors(1).size(), 3u);  // edge
    EXPECT_EQ(mesh.neighbors(5).size(), 4u);  // interior
    Topology torus(4, 4, true);
    for (noc::NodeId id = 0; id < torus.size(); ++id)
        EXPECT_EQ(torus.neighbors(id).size(), 4u);
}

TEST(Topology, TwoWideTorusDeduplicatesNeighbors)
{
    // On a 2-wide wrapped dimension, east and west reach the same tile.
    Topology t(2, 2, true);
    auto n = t.neighbors(0);
    EXPECT_EQ(n.size(), 2u); // tiles 1 and 2, each once
}

TEST(Topology, ManhattanDistanceMesh)
{
    Topology t(5, 5, false);
    EXPECT_EQ(t.distance(0, 24), 8);
    EXPECT_EQ(t.distance(0, 4), 4);
    EXPECT_EQ(t.distance(12, 12), 0);
}

TEST(Topology, TorusDistanceTakesShortcut)
{
    Topology t(5, 5, true);
    EXPECT_EQ(t.distance(0, 4), 1);  // wrap west
    EXPECT_EQ(t.distance(0, 24), 2); // wrap both axes
    EXPECT_EQ(t.distance(0, 2), 2);  // no shortcut for middle
}

TEST(Topology, DistanceIsSymmetric)
{
    for (bool wrap : {false, true}) {
        Topology t(6, 4, wrap);
        sim::Rng rng(5);
        for (int i = 0; i < 200; ++i) {
            auto a = static_cast<noc::NodeId>(rng.below(t.size()));
            auto b = static_cast<noc::NodeId>(rng.below(t.size()));
            EXPECT_EQ(t.distance(a, b), t.distance(b, a));
        }
    }
}

/** Property: XY routing reaches the destination in exactly
 *  distance(a, b) hops, on meshes and tori alike. */
class RoutingProperty
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{};

TEST_P(RoutingProperty, RouteLengthEqualsDistance)
{
    auto [w, h, wrap] = GetParam();
    Topology t(w, h, wrap);
    sim::Rng rng(42);
    for (int trial = 0; trial < 300; ++trial) {
        auto src = static_cast<noc::NodeId>(rng.below(t.size()));
        auto dst = static_cast<noc::NodeId>(rng.below(t.size()));
        if (src == dst)
            continue;
        int hops = 0;
        noc::NodeId at = src;
        while (at != dst) {
            at = t.nextHop(at, dst);
            ASSERT_LE(++hops, t.distance(src, dst))
                << "route exceeded the Manhattan distance";
        }
        EXPECT_EQ(hops, t.distance(src, dst));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, RoutingProperty,
    ::testing::Values(std::make_tuple(3, 3, false),
                      std::make_tuple(3, 3, true),
                      std::make_tuple(8, 8, false),
                      std::make_tuple(8, 8, true),
                      std::make_tuple(7, 2, true),
                      std::make_tuple(1, 9, false),
                      std::make_tuple(20, 20, true)));

TEST(Topology, XyRoutingGoesXFirst)
{
    Topology t(4, 4, false);
    // 0 -> 15 must move east before south.
    EXPECT_EQ(t.nextHopDir(0, 15), Dir::East);
    EXPECT_EQ(t.nextHop(0, 15), 1u);
    // Same column: straight south.
    EXPECT_EQ(t.nextHopDir(0, 12), Dir::South);
}

TEST(Topology, RoutingToSelfPanics)
{
    Topology t(3, 3);
    EXPECT_THROW(t.nextHopDir(4, 4), sim::PanicError);
}

TEST(Topology, InvalidDimensionsFatal)
{
    EXPECT_THROW(Topology(0, 3), sim::FatalError);
    EXPECT_THROW(Topology(3, -1), sim::FatalError);
}

TEST(Topology, OutOfRangeAccessPanics)
{
    Topology t(2, 2);
    EXPECT_THROW(t.coordOf(4), sim::PanicError);
    EXPECT_THROW(t.idOf(Coord{2, 0}), sim::PanicError);
}

TEST(Topology, Describe)
{
    EXPECT_EQ(Topology(3, 3, false).describe(), "3x3 mesh");
    EXPECT_EQ(Topology(20, 20, true).describe(), "20x20 torus");
}

TEST(Topology, SquareFactory)
{
    auto t = Topology::square(6, true);
    EXPECT_EQ(t.width(), 6);
    EXPECT_EQ(t.height(), 6);
    EXPECT_TRUE(t.wrap());
}

TEST(Topology, DirNames)
{
    EXPECT_STREQ(noc::dirName(Dir::North), "N");
    EXPECT_STREQ(noc::dirName(Dir::South), "S");
    EXPECT_STREQ(noc::dirName(Dir::East), "E");
    EXPECT_STREQ(noc::dirName(Dir::West), "W");
}

} // namespace
