/**
 * @file
 * Unit tests of the observability plane itself: registry snapshotting,
 * series merging (the sweep-determinism contract), CSV/JSON export,
 * Chrome-trace emission, the NoC probe, and bit-identical merged
 * metrics across sweep thread counts.
 */

#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "coin/engine.hpp"
#include "soc/scenarios.hpp"
#include "soc/soc.hpp"
#include "sweep/sweep.hpp"
#include "trace/attach.hpp"
#include "trace/metrics.hpp"
#include "trace/noc_trace.hpp"
#include "trace/tracer.hpp"

namespace {

using namespace blitz;

// ------------------------------------------------ tiny JSON validator
// Recursive-descent checker: enough JSON to prove the exports parse
// (the repo deliberately has no third-party JSON dependency).

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_) {
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        }
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------------------ registry

TEST(Metrics, CountersGaugesSampledAndHistogramsSnapshotInOrder)
{
    trace::Registry reg;
    trace::Counter hits = reg.counter("hits");
    trace::Gauge level = reg.gauge("level");
    int calls = 0;
    reg.sampled("derived", [&calls] { return 10.0 * ++calls; });
    sim::Histogram *lat = reg.histogram("lat", 0.0, 64.0, 8);

    ASSERT_EQ(reg.metricCount(), 4u);
    EXPECT_EQ(reg.schema()[0].name, "hits");
    EXPECT_EQ(reg.schema()[0].kind, trace::MetricKind::Counter);
    EXPECT_EQ(reg.schema()[3].kind, trace::MetricKind::Histogram);

    hits.add();
    hits.add(2);
    level.set(0.5);
    lat->add(3.0);
    lat->add(99.0); // overflow bucket still counts toward the column
    reg.sample(100);

    hits.add();
    level.set(-1.25);
    reg.sample(200);

    const auto &rows = reg.snapshots();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].tick, 100u);
    EXPECT_EQ(rows[0].values, (std::vector<double>{3, 0.5, 10, 2}));
    EXPECT_EQ(rows[1].values, (std::vector<double>{4, -1.25, 20, 2}));
}

TEST(Metrics, OnSampleObserverSeesEachAppendedRow)
{
    trace::Registry reg;
    trace::Counter c = reg.counter("c");
    std::vector<sim::Tick> seen;
    reg.onSample = [&](const trace::Snapshot &s) {
        seen.push_back(s.tick);
        EXPECT_EQ(s.values.size(), 1u);
    };
    c.add();
    reg.sample(1);
    reg.sample(2);
    EXPECT_EQ(seen, (std::vector<sim::Tick>{1, 2}));
}

TEST(Metrics, MergeSumsAlignedRowsAndTracksCoverage)
{
    auto makeSeries = [](std::uint64_t bias, std::size_t rows) {
        trace::Registry reg;
        trace::Counter c = reg.counter("c");
        for (std::size_t i = 0; i < rows; ++i) {
            c.add(bias);
            reg.sample(static_cast<sim::Tick>((i + 1) * 10));
        }
        return reg.takeSeries();
    };

    trace::MetricsSeries acc = makeSeries(1, 2); // rows: 1, 2
    acc.merge(makeSeries(5, 3));                 // rows: 5, 10, 15
    ASSERT_EQ(acc.snapshots().size(), 3u);
    EXPECT_EQ(acc.snapshots()[0].values[0], 6.0);   // 1 + 5
    EXPECT_EQ(acc.snapshots()[1].values[0], 12.0);  // 2 + 10
    EXPECT_EQ(acc.snapshots()[2].values[0], 15.0);  // tail, one rep
    EXPECT_EQ(acc.coverage(),
              (std::vector<std::uint32_t>{2, 2, 1}));
}

TEST(Metrics, CsvAndJsonExportsAreWellFormed)
{
    trace::Registry reg;
    trace::Counter c = reg.counter("c");
    reg.sampled("g", [] { return 1.5; });
    sim::Histogram *h = reg.histogram("h", 0.0, 10.0, 5);
    c.add(7);
    h->add(4.0);
    reg.sample(42);

    std::ostringstream csv;
    reg.writeCsv(csv);
    EXPECT_EQ(csv.str(), "tick,cov,c,g,h\n42,1,7,1.5,1\n");

    std::ostringstream json;
    reg.writeJson(json);
    EXPECT_TRUE(JsonChecker(json.str()).valid()) << json.str();
    EXPECT_NE(json.str().find("\"schema\""), std::string::npos);
    EXPECT_NE(json.str().find("\"histograms\""), std::string::npos);
}

// ------------------------------------------------------------- tracer

TEST(Tracer, EmitsValidChromeTraceJson)
{
    trace::Tracer t;
    t.setPid(3);
    t.complete("coin", "exchange", 5, 800, 1600,
               {{"xid", std::int64_t{42}}, {"outcome", "ok"}});
    t.instant("fault", "inject_drop", 1, 900);
    t.counter("pm", "power_mw", 0, 1000, 123.5);
    ASSERT_EQ(t.eventCount(), 3u);

    std::ostringstream os;
    t.writeJson(os);
    const std::string doc = os.str();
    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":3"), std::string::npos);
    EXPECT_NE(doc.find("\"outcome\":\"ok\""), std::string::npos);
    // 800 ticks at 800 MHz = 1 us.
    EXPECT_NE(doc.find("\"ts\":1.0000"), std::string::npos);
}

TEST(Tracer, DisabledTracerRecordsNothing)
{
    trace::Tracer t;
    t.setEnabled(false);
    t.complete("c", "n", 0, 0, 10);
    t.instant("c", "n", 0, 5);
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.droppedEvents(), 0u);
}

TEST(Tracer, OverflowCountsDroppedEventsInsteadOfGrowing)
{
    trace::Tracer t(/*maxEvents=*/2);
    t.instant("c", "a", 0, 1);
    t.instant("c", "b", 0, 2);
    t.instant("c", "c", 0, 3);
    EXPECT_EQ(t.eventCount(), 2u);
    EXPECT_EQ(t.droppedEvents(), 1u);
}

TEST(Tracer, AbsorbRehomesReplicationLanes)
{
    trace::Tracer rep;
    rep.instant("c", "n", 7, 10);
    trace::Tracer merged;
    merged.absorb(rep, /*pid=*/4);
    std::ostringstream os;
    merged.writeJson(os);
    EXPECT_NE(os.str().find("\"pid\":4"), std::string::npos);
    EXPECT_EQ(os.str().find("\"pid\":0"), std::string::npos);
}

TEST(Tracer, InternedCounterTracksDedupeAndRecordSamples)
{
    trace::Tracer t;
    // The names are built at runtime — the raw counter() path would
    // dangle; the interned path copies them into tracer-owned storage.
    std::string name = "prof/shard";
    auto a = t.counterTrack("prof", name + "0.exec_ms", 0);
    auto b = t.counterTrack("prof", name + "1.exec_ms", 1);
    auto a2 = t.counterTrack("prof", "prof/shard0.exec_ms", 0);
    ASSERT_TRUE(a.valid());
    EXPECT_EQ(a.id, a2.id) << "identical triple re-interned";
    EXPECT_NE(a.id, b.id);
    EXPECT_EQ(t.trackCount(), 2u);

    t.counterSample(a, 100, 1.5);
    t.counterSample(b, 100, 2.5);
    t.counterSample(a, 200, 3.5);
    EXPECT_EQ(t.eventCount(), 3u);

    std::ostringstream os;
    t.writeJson(os);
    EXPECT_NE(os.str().find("\"prof/shard0.exec_ms\""),
              std::string::npos);
    EXPECT_NE(os.str().find("\"prof/shard1.exec_ms\""),
              std::string::npos);
    EXPECT_NE(os.str().find("\"ph\":\"C\""), std::string::npos);
}

TEST(Tracer, AbsorbPreservesCounterTracksAcrossMerges)
{
    // The sweep fold: each replication's tracer dies after absorb(),
    // so the merged tracer must re-intern the source's track table —
    // a raw-pointer carry-over would dangle, and dropping the track
    // identity would collapse every counter into one anonymous lane.
    trace::Tracer master;
    for (std::uint32_t rep = 0; rep < 2; ++rep) {
        trace::Tracer worker;
        auto exec =
            worker.counterTrack("prof", "prof/shard0.exec_ms", 0);
        auto inbox =
            worker.counterTrack("prof", "prof/shard0.inbox", 0);
        worker.counterSample(exec, 100, 1.0 + rep);
        worker.counterSample(inbox, 100, 10.0 + rep);
        master.absorb(worker, /*pid=*/rep);
    } // worker (and its owned names) destroyed here
    EXPECT_EQ(master.eventCount(), 4u);

    std::ostringstream os;
    master.writeJson(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"prof/shard0.exec_ms\""), std::string::npos);
    EXPECT_NE(doc.find("\"prof/shard0.inbox\""), std::string::npos);
    // Both replication lanes survive with their values.
    EXPECT_NE(doc.find("\"pid\":0"), std::string::npos);
    EXPECT_NE(doc.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(doc.find("11"), std::string::npos);

    // Absorbing into a tracer that already interned the same triple
    // must reuse the existing track, not grow a duplicate.
    trace::Tracer twice;
    auto own = twice.counterTrack("prof", "prof/shard0.exec_ms", 0);
    twice.counterSample(own, 50, 0.5);
    twice.absorb(master, /*pid=*/9);
    EXPECT_EQ(twice.trackCount(), 2u)
        << "absorb duplicated an identical (cat, name, tid) track";
}

// ---------------------------------------------------------- NoC probe

TEST(NocTrace, AccumulatesHopsDeliveriesAndUtilization)
{
    trace::Registry reg;
    trace::NocTrace probe(reg, /*linkCount=*/4, /*hopLatency=*/2);
    probe.onHop(1, 100);
    probe.onHop(1, 102);
    probe.onHop(2, 104);
    probe.onDeliver(0, 0, /*inject=*/100, /*now=*/110);
    probe.onDrop(3, 0, 120);

    EXPECT_EQ(probe.linkHops()[1], 2u);
    EXPECT_DOUBLE_EQ(probe.linkUtilization(1, /*elapsed=*/100), 0.04);
    EXPECT_DOUBLE_EQ(probe.maxLinkUtilization(100), 0.04);
    reg.sample(200);
    const auto &row = reg.snapshots().back();
    // Columns registered by the probe: hops, delivered, dropped, latency.
    const auto &schema = reg.schema();
    for (std::size_t i = 0; i < schema.size(); ++i) {
        if (schema[i].name == "noc.hops")
            EXPECT_EQ(row.values[i], 3.0);
        if (schema[i].name == "noc.delivered")
            EXPECT_EQ(row.values[i], 1.0);
        if (schema[i].name == "noc.dropped")
            EXPECT_EQ(row.values[i], 1.0);
    }

    std::ostringstream csv;
    probe.writeLinkCsv(csv, /*elapsed=*/100);
    EXPECT_NE(csv.str().find("link,hops,utilization"),
              std::string::npos);
}

// ------------------------------------------------------- Soc sampling

// Regression: the Soc metrics sampler's strong self-reference must
// outlive run()'s event loop. A block-scoped owner dies before the
// loop starts, the tick-0 fire fails its weak lock, and the series
// silently collapses to a single tick-0 row.
TEST(Metrics, SocSamplerKeepsFiringAcrossTheWholeRun)
{
    soc::PmConfig pm;
    pm.kind = soc::PmKind::BlitzCoin;
    pm.alloc = coin::AllocPolicy::RelativeProportional;
    pm.budgetMw = soc::budgets::av15Percent;
    trace::Registry reg;
    soc::Soc s(soc::make3x3AvSoc(), pm, /*seed=*/7);
    s.attachMetrics(&reg, /*interval=*/4'096);
    workload::Dag dag = soc::avDependent(s.config(), /*frames=*/1);
    soc::SocRunStats st = s.run(dag);
    ASSERT_TRUE(st.completed);

    const auto &rows = reg.snapshots();
    // One row per interval over the whole run, first at tick 0,
    // strictly increasing on the fixed cadence.
    ASSERT_GE(rows.size(), 4u);
    EXPECT_EQ(rows.front().tick, 0u);
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].tick, rows[i - 1].tick + 4'096);
    EXPECT_GE(rows.back().tick + 4'096, st.execTime);
}

// ----------------------------------------- sweep-merge thread identity

std::string
mergedSweepCsv(std::size_t threads)
{
    sweep::SweepOptions opts;
    opts.threads = threads;
    auto acc = sweep::runSweepFold<trace::MetricsSeries>(
        /*replications=*/6, /*rootSeed=*/77,
        [](std::size_t, std::uint64_t seed) {
            coin::EngineConfig cfg;
            trace::Registry reg;
            coin::MeshSim sim(noc::Topology::square(4), cfg, seed);
            trace::attachMeshMetrics(sim, reg, /*interval=*/512);
            for (std::size_t i = 0; i < sim.ledger().size(); ++i)
                sim.setMax(i, 8 << (i % 3));
            sim.clusterHas(120);
            sim.runFor(40'000);
            return reg.takeSeries();
        },
        [](trace::MetricsSeries &acc, const trace::MetricsSeries &s,
           std::size_t) { acc.merge(s); },
        trace::MetricsSeries{}, opts);
    std::ostringstream os;
    acc.writeCsv(os);
    return os.str();
}

TEST(Metrics, MergedSweepSeriesBitIdenticalAcrossThreadCounts)
{
    const std::string one = mergedSweepCsv(1);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, mergedSweepCsv(2));
    EXPECT_EQ(one, mergedSweepCsv(4));
}

} // namespace
