/**
 * @file
 * Tests for activity-trace recording, CSV round-trips, and replay.
 */

#include <gtest/gtest.h>

#include "workload/trace.hpp"

namespace {

using namespace blitz;
using workload::ActivityTrace;

ActivityTrace
smallTrace()
{
    ActivityTrace t;
    t.record(0, 0, true);
    t.record(0, 1, true);
    t.record(5000, 0, false);
    t.record(9000, 2, true);
    t.record(15000, 1, false);
    return t;
}

TEST(Trace, RecordsInOrder)
{
    ActivityTrace t = smallTrace();
    EXPECT_EQ(t.size(), 5u);
    EXPECT_EQ(t.horizon(), 15000u);
    EXPECT_EQ(t.maxTile(), 2u);
}

TEST(Trace, RejectsOutOfOrderEdges)
{
    ActivityTrace t;
    t.record(100, 0, true);
    EXPECT_THROW(t.record(50, 1, true), sim::FatalError);
}

TEST(Trace, CsvRoundTrip)
{
    ActivityTrace t = smallTrace();
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("tick,tile,active"), std::string::npos);
    ActivityTrace back = ActivityTrace::fromCsv(csv);
    ASSERT_EQ(back.size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(back.events()[i].when, t.events()[i].when);
        EXPECT_EQ(back.events()[i].tile, t.events()[i].tile);
        EXPECT_EQ(back.events()[i].startsExecution,
                  t.events()[i].startsExecution);
    }
}

TEST(Trace, FromCsvRejectsGarbage)
{
    EXPECT_THROW(ActivityTrace::fromCsv("tick,tile,active\n1,2\n"),
                 sim::FatalError);
    EXPECT_THROW(ActivityTrace::fromCsv("nonsense row\n"),
                 sim::FatalError);
}

TEST(Trace, FromGeneratorCoversHorizon)
{
    workload::PhaseGenConfig cfg;
    cfg.meanPhaseTicks = 1000;
    workload::PhaseGenerator gen(8, cfg, 3);
    ActivityTrace t = ActivityTrace::fromGenerator(gen, 20000);
    EXPECT_GT(t.size(), 20u);
    EXPECT_LE(t.horizon(), 20000u);
    EXPECT_LT(t.maxTile(), 8u);
}

TEST(Trace, ReplayConservesAndConverges)
{
    ActivityTrace t = smallTrace();
    t.setTargetCoins(0, 32);
    coin::EngineConfig cfg;
    coin::MeshSim sim(noc::Topology::square(2), cfg, 9);
    sim.randomizeHas(24);
    auto stats = t.replayOn(sim);
    EXPECT_EQ(sim.ledger().totalHas(), 24);
    EXPECT_GT(stats.exchanges, 0u);
    // After the last edge only tile 2 is active; it ends holding
    // (nearly) everything.
    EXPECT_GE(sim.ledger().has(2), 22);
    EXPECT_LE(stats.finalMaxError, 2.5);
}

TEST(Trace, ReplayBusyFractionReflectsChurn)
{
    // Dense churn keeps the mesh busier than sparse churn.
    auto busy_for = [](sim::Tick mean_phase) {
        workload::PhaseGenConfig cfg;
        cfg.meanPhaseTicks = mean_phase;
        workload::PhaseGenerator gen(16, cfg, 11);
        ActivityTrace t =
            ActivityTrace::fromGenerator(gen, 16 * mean_phase);
        coin::EngineConfig ecfg;
        coin::MeshSim sim(noc::Topology::square(4), ecfg, 13);
        sim.randomizeHas(128);
        return t.replayOn(sim).busyFraction;
    };
    EXPECT_GT(busy_for(2000), busy_for(50000));
}

TEST(Trace, ReplayRejectsUndersizedMesh)
{
    ActivityTrace t = smallTrace(); // uses tiles up to 2
    coin::EngineConfig cfg;
    coin::MeshSim tiny(noc::Topology(2, 1, false), cfg, 1);
    EXPECT_THROW(t.replayOn(tiny), sim::PanicError);
}

} // namespace
