/**
 * @file
 * Tests for the packet-level 4-way exchange (Algorithm 1 in hardware):
 * request -> status x4 -> update x4, with the conflict exposure and
 * message-count properties of Section III-B.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "blitzcoin/unit.hpp"
#include "coin/neighborhood.hpp"

namespace {

using namespace blitz;
using blitzcoin::BlitzCoinUnit;
using blitzcoin::UnitConfig;

struct FourWayCluster
{
    sim::EventQueue eq;
    noc::Topology topo;
    noc::Network net;
    std::vector<std::unique_ptr<BlitzCoinUnit>> units;

    explicit FourWayCluster(int d)
        : topo(d, d, false), net(eq, topo)
    {
        UnitConfig cfg;
        cfg.mode = coin::ExchangeMode::FourWay;
        std::vector<bool> managed(topo.size(), true);
        auto hoods = coin::managedNeighborhoods(topo, managed);
        for (noc::NodeId id = 0; id < topo.size(); ++id) {
            units.push_back(std::make_unique<BlitzCoinUnit>(
                eq, net, id, cfg, hoods[id], 700 + id));
            net.setHandler(id, [this, id](const noc::Packet &pkt) {
                units[id]->handlePacket(pkt);
            });
        }
    }

    coin::Coins
    total() const
    {
        coin::Coins sum = 0;
        for (const auto &u : units)
            sum += u->has();
        return sum;
    }

    double
    error() const
    {
        coin::Coins th = 0, tm = 0;
        for (const auto &u : units) {
            th += u->has();
            tm += u->max();
        }
        if (tm == 0)
            return 0.0;
        double alpha = static_cast<double>(th) /
                       static_cast<double>(tm);
        double sum = 0.0;
        for (const auto &u : units) {
            sum += std::abs(static_cast<double>(u->has()) -
                            alpha * static_cast<double>(u->max()));
        }
        return sum / static_cast<double>(units.size());
    }
};

TEST(FourWayHw, GroupExchangeEqualizes)
{
    FourWayCluster c(3);
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    for (std::size_t i = 0; i < 9; ++i)
        c.units[i]->setMax(maxes[i]);
    c.units[4]->setHas(100);
    for (auto &u : c.units)
        u->start();
    c.eq.runUntil(30000);
    EXPECT_LT(c.error(), 1.0);
    EXPECT_EQ(c.total(), 100);
}

TEST(FourWayHw, ConservesUnderConcurrentRounds)
{
    // Every tile initiates 4-way rounds concurrently: the conflict
    // scenario the paper flags (C requests B while A-B in flight).
    // Stale snapshots may transiently overdraw counters, but the
    // zero-sum updates keep the total exact.
    FourWayCluster c(4);
    sim::Rng rng(3);
    for (auto &u : c.units) {
        u->setMax(rng.range(4, 63));
        u->setHas(rng.range(0, 16));
        u->start();
    }
    const coin::Coins total = c.total();
    for (int round = 0; round < 20; ++round) {
        c.eq.runUntil(c.eq.now() + 1000);
        auto i = static_cast<std::size_t>(rng.below(16));
        c.units[i]->setMax(rng.chance(0.3) ? 0 : rng.range(4, 63));
        ASSERT_EQ(c.total(), total) << "round " << round;
    }
    c.eq.runUntil(c.eq.now() + 30000);
    EXPECT_EQ(c.total(), total);
    for (auto &u : c.units)
        EXPECT_GE(u->has(), 0) << "steady-state negative";
}

TEST(FourWayHw, UsesMorePacketsPerExchangeThanOneWay)
{
    // Section III-B: 12 messages per 4-way exchange vs 8 per 1-way
    // rotation (2 per pairwise exchange).
    auto packets_per_exchange = [](coin::ExchangeMode mode) {
        sim::EventQueue eq;
        noc::Topology topo(3, 3, false);
        noc::Network net(eq, topo);
        UnitConfig cfg;
        cfg.mode = mode;
        std::vector<bool> managed(topo.size(), true);
        auto hoods = coin::managedNeighborhoods(topo, managed);
        std::vector<std::unique_ptr<BlitzCoinUnit>> units;
        for (noc::NodeId id = 0; id < topo.size(); ++id) {
            units.push_back(std::make_unique<BlitzCoinUnit>(
                eq, net, id, cfg, hoods[id], 11 + id));
            net.setHandler(id, [&units, id](const noc::Packet &pkt) {
                units[id]->handlePacket(pkt);
            });
        }
        for (auto &u : units) {
            u->setMax(16);
            u->setHas(8);
            u->start();
        }
        eq.runUntil(50000);
        std::uint64_t initiated = 0;
        for (auto &u : units)
            initiated += u->exchangesInitiated();
        return static_cast<double>(net.packetsSent()) /
               static_cast<double>(initiated);
    };
    double one = packets_per_exchange(coin::ExchangeMode::OneWay);
    double four = packets_per_exchange(coin::ExchangeMode::FourWay);
    EXPECT_NEAR(one, 2.0, 0.2);
    // 3 messages x degree at full participation (the paper's 12);
    // busy (snapshot-locked) members do not reply, so contended
    // rounds run lighter — still several times the pairwise cost.
    EXPECT_GT(four, 5.0);
    EXPECT_GT(four, 2.5 * one);
}

TEST(FourWayHw, LostStatusRepliesDoNotWedgeTheRound)
{
    // Drop all request replies at one tile: the center's round must
    // time out, complete with the remaining statuses, and continue.
    FourWayCluster c(3);
    // Tile 0's handler swallows CoinRequest packets (it never
    // replies), starving part of every neighbor's gather phase.
    c.net.setHandler(0, [](const noc::Packet &) {});
    for (auto &u : c.units) {
        u->setMax(16);
        u->setHas(8);
    }
    for (noc::NodeId id = 1; id < 9; ++id)
        c.units[id]->start();
    c.eq.runUntil(100000);
    for (noc::NodeId id = 1; id < 9; ++id) {
        EXPECT_GT(c.units[id]->exchangesInitiated(), 3u)
            << "unit " << id << " wedged";
    }
}

TEST(FourWayHw, ActivityChangeReconverges)
{
    FourWayCluster c(3);
    for (auto &u : c.units) {
        u->setMax(16);
        u->setHas(8);
        u->start();
    }
    c.eq.runUntil(10000);
    c.units[0]->setMax(0);  // relinquish
    c.units[4]->setMax(63); // demand spike
    c.eq.runUntil(60000);
    EXPECT_LT(c.error(), 1.0);
    EXPECT_EQ(c.units[0]->has(), 0);
    EXPECT_EQ(c.total(), 72);
}

} // namespace
