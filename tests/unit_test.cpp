/**
 * @file
 * Tests for the BlitzCoin hardware unit: the packet-driven 1-way
 * exchange protocol over the routed NoC.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "blitzcoin/unit.hpp"
#include "coin/neighborhood.hpp"

namespace {

using namespace blitz;
using blitzcoin::BlitzCoinUnit;
using blitzcoin::UnitConfig;

/** A d x d SoC where every tile runs a unit. */
struct Cluster
{
    sim::EventQueue eq;
    noc::Topology topo;
    noc::Network net;
    std::vector<std::unique_ptr<BlitzCoinUnit>> units;

    explicit Cluster(int d, UnitConfig cfg = UnitConfig{})
        : topo(d, d, false), net(eq, topo)
    {
        std::vector<bool> managed(topo.size(), true);
        auto hoods = coin::managedNeighborhoods(topo, managed);
        for (noc::NodeId id = 0; id < topo.size(); ++id) {
            units.push_back(std::make_unique<BlitzCoinUnit>(
                eq, net, id, cfg, hoods[id], 1000 + id));
            net.setHandler(id, [this, id](const noc::Packet &pkt) {
                units[id]->handlePacket(pkt);
            });
        }
    }

    coin::Coins
    totalCoins() const
    {
        coin::Coins sum = 0;
        for (const auto &u : units)
            sum += u->has();
        return sum;
    }

    double
    clusterError() const
    {
        coin::Coins th = 0, tm = 0;
        for (const auto &u : units) {
            th += u->has();
            tm += u->max();
        }
        if (tm == 0)
            return 0.0;
        double alpha = static_cast<double>(th) /
                       static_cast<double>(tm);
        double sum = 0.0;
        for (const auto &u : units) {
            sum += std::abs(static_cast<double>(u->has()) -
                            alpha * static_cast<double>(u->max()));
        }
        return sum / static_cast<double>(units.size());
    }

    void
    startAll()
    {
        for (auto &u : units)
            u->start();
    }
};

TEST(Unit, TwoTilesEqualize)
{
    Cluster c(2);
    c.units[0]->setHas(16);
    c.units[0]->setMax(8);
    c.units[1]->setMax(8);
    c.startAll();
    c.eq.runUntil(2000);
    EXPECT_EQ(c.units[0]->has(), 8);
    EXPECT_EQ(c.units[1]->has(), 8);
    EXPECT_EQ(c.totalCoins(), 16);
}

TEST(Unit, ConservationAcrossHeavyChurn)
{
    Cluster c(4);
    sim::Rng rng(5);
    for (auto &u : c.units) {
        u->setHas(rng.range(0, 20));
        u->setMax(rng.range(0, 63));
    }
    const coin::Coins total = c.totalCoins();
    c.startAll();
    // Interleave activity changes with running time.
    for (int round = 0; round < 20; ++round) {
        c.eq.runUntil(c.eq.now() + 500);
        auto tile = static_cast<std::size_t>(rng.below(16));
        c.units[tile]->setMax(rng.chance(0.5) ? 0
                                              : rng.range(1, 63));
        ASSERT_EQ(c.totalCoins(), total) << "round " << round;
    }
    c.eq.runUntil(c.eq.now() + 5000);
    EXPECT_EQ(c.totalCoins(), total);
}

TEST(Unit, ConvergesToProportionalShares)
{
    Cluster c(3);
    // Heterogeneous targets; pool = half of demand.
    const coin::Coins maxes[9] = {10, 20, 40, 10, 60, 20, 10, 20, 10};
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < 9; ++i) {
        c.units[i]->setMax(maxes[i]);
        demand += maxes[i];
    }
    c.units[4]->setHas(demand / 2); // all coins start on one tile
    c.startAll();
    c.eq.runUntil(20000);
    EXPECT_LT(c.clusterError(), 1.0);
    const double alpha = 0.5;
    for (std::size_t i = 0; i < 9; ++i) {
        EXPECT_NEAR(static_cast<double>(c.units[i]->has()),
                    alpha * static_cast<double>(maxes[i]), 2.0)
            << "tile " << i;
    }
}

TEST(Unit, InactiveTileDrainsOnTaskEnd)
{
    Cluster c(2);
    c.units[0]->setMax(8);
    c.units[1]->setMax(8);
    c.units[0]->setHas(8);
    c.units[1]->setHas(8);
    c.startAll();
    c.eq.runUntil(1000);
    c.units[0]->setMax(0); // task ends: relinquish
    c.eq.runUntil(5000);
    EXPECT_EQ(c.units[0]->has(), 0);
    EXPECT_EQ(c.units[1]->has(), 16);
}

TEST(Unit, SteadyStateCoinsAreNonNegative)
{
    Cluster c(3);
    for (auto &u : c.units) {
        u->setMax(16);
        u->setHas(8);
    }
    c.startAll();
    c.eq.runUntil(50000);
    for (auto &u : c.units)
        EXPECT_GE(u->has(), 0);
}

TEST(Unit, CoinsChangedCallbackFires)
{
    Cluster c(2);
    int callbacks = 0;
    c.units[1]->onCoinsChanged = [&](coin::Coins) { ++callbacks; };
    c.units[0]->setHas(10);
    c.units[0]->setMax(5);
    c.units[1]->setMax(5);
    c.startAll();
    c.eq.runUntil(2000);
    EXPECT_GT(callbacks, 0);
    EXPECT_EQ(c.units[1]->has(), 5);
}

TEST(Unit, StopHaltsInitiation)
{
    Cluster c(2);
    c.units[0]->setHas(10);
    c.units[0]->setMax(5);
    c.units[1]->setMax(5);
    c.units[0]->stop();
    c.units[1]->stop();
    c.eq.runUntil(5000);
    // No exchanges: coins sit where they were.
    EXPECT_EQ(c.units[0]->has(), 10);
    EXPECT_EQ(c.units[0]->exchangesInitiated(), 0u);
}

TEST(Unit, ServesIncomingEvenWhenStopped)
{
    Cluster c(2);
    c.units[0]->setHas(10);
    c.units[0]->setMax(5);
    c.units[1]->setMax(5);
    c.units[1]->stop(); // passive partner
    c.units[0]->start();
    c.eq.runUntil(5000);
    // Unit 0 initiated; unit 1 served the status and took its share.
    EXPECT_EQ(c.units[1]->has(), 5);
    EXPECT_EQ(c.totalCoins(), 10);
}

TEST(Unit, ThermalCapGatesInflow)
{
    UnitConfig cfg;
    cfg.thermalCap = 3;
    Cluster c(2, cfg);
    c.units[0]->setHas(20);
    c.units[0]->setMax(10);
    c.units[1]->setMax(10);
    c.startAll();
    c.eq.runUntil(10000);
    EXPECT_LE(c.units[1]->has(), 3);
    EXPECT_EQ(c.totalCoins(), 20);
}

TEST(Unit, TracksExchangeCounters)
{
    Cluster c(2);
    c.units[0]->setHas(16);
    c.units[0]->setMax(8);
    c.units[1]->setMax(8);
    c.startAll();
    c.eq.runUntil(3000);
    EXPECT_GT(c.units[0]->exchangesInitiated(), 0u);
    EXPECT_GT(c.units[0]->exchangesMoved() +
                  c.units[1]->exchangesMoved(),
              0u);
}

} // namespace
