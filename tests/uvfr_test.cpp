/**
 * @file
 * Tests for the unified voltage/frequency regulator loop.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "power/pf_curve.hpp"
#include "power/uvfr.hpp"

namespace {

using namespace blitz;
using power::Uvfr;
using power::UvfrConfig;

UvfrConfig
defaultCfg()
{
    UvfrConfig cfg;
    cfg.ro.fMaxMhz = 800.0;
    cfg.ro.vNominal = 1.0;
    cfg.ldo.vMax = 1.0;
    return cfg;
}

/** Step the loop until settled or the iteration budget runs out. */
int
settle(Uvfr &u, int maxSteps = 500)
{
    for (int i = 1; i <= maxSteps; ++i) {
        u.step();
        if (u.settled())
            return i;
    }
    return maxSteps + 1;
}

TEST(Uvfr, SettlesToTargetWithinTdcResolution)
{
    Uvfr u(defaultCfg());
    u.setTargetMhz(600.0);
    int steps = settle(u);
    EXPECT_LE(steps, 200);
    EXPECT_NEAR(u.freqMhz(), 600.0, u.tdc().resolutionMhz() * 2.0);
}

TEST(Uvfr, SettlingIsReasonablyFast)
{
    // The regulator must settle well before the coin exchange does:
    // a couple hundred control periods at most (~ a few us).
    Uvfr u(defaultCfg());
    for (double target : {200.0, 400.0, 650.0, 800.0}) {
        u.setTargetMhz(target);
        EXPECT_LE(settle(u), 300) << "target " << target;
    }
}

TEST(Uvfr, TracksDownwardRetarget)
{
    Uvfr u(defaultCfg());
    u.setTargetMhz(700.0);
    settle(u);
    u.setTargetMhz(300.0);
    settle(u);
    EXPECT_NEAR(u.freqMhz(), 300.0, u.tdc().resolutionMhz() * 2.0);
}

TEST(Uvfr, DividerSuppliesSubFloorFrequencies)
{
    // Below the minimum-voltage oscillator frequency the supply cannot
    // follow; the clock divider must deliver the low target anyway.
    UvfrConfig cfg = defaultCfg();
    Uvfr u(cfg);
    const double floor_mhz =
        power::RingOscillator(cfg.ro).freqAt(cfg.ldo.vMin);
    const double target = floor_mhz / 4.0;
    u.setTargetMhz(target);
    settle(u);
    EXPECT_LE(u.freqMhz(), target + 1e-9);
    EXPECT_TRUE(u.settled());
    // The oscillator itself still runs at the voltage floor.
    EXPECT_GE(u.oscFreqMhz(), floor_mhz - 1e-9);
}

TEST(Uvfr, ZeroTargetParksTheClock)
{
    Uvfr u(defaultCfg());
    u.setTargetMhz(500.0);
    settle(u);
    u.setTargetMhz(0.0);
    settle(u);
    EXPECT_DOUBLE_EQ(u.freqMhz(), 0.0);
}

TEST(Uvfr, UnreachableTargetSaturatesSettled)
{
    UvfrConfig cfg = defaultCfg();
    cfg.ldo.vMax = 0.8; // supply cannot reach the voltage for Fmax
    Uvfr u(cfg);
    u.setTargetMhz(800.0);
    int steps = settle(u);
    EXPECT_LE(steps, 500);
    EXPECT_TRUE(u.settled());
    EXPECT_LT(u.freqMhz(), 800.0);
}

TEST(Uvfr, VoltageTracksOperatingPoint)
{
    Uvfr u(defaultCfg());
    u.setTargetMhz(800.0);
    settle(u);
    double v_high = u.voltage();
    u.setTargetMhz(300.0);
    settle(u);
    EXPECT_LT(u.voltage(), v_high); // lower F -> lower V: no guardband
}

TEST(Uvfr, SettledIsStableUnderFurtherStepping)
{
    Uvfr u(defaultCfg());
    u.setTargetMhz(450.0);
    settle(u);
    double f = u.freqMhz();
    for (int i = 0; i < 100; ++i)
        u.step();
    EXPECT_NEAR(u.freqMhz(), f, u.tdc().resolutionMhz() * 2.0);
}

TEST(Uvfr, TargetQuantizedToTdcResolution)
{
    Uvfr u(defaultCfg());
    u.setTargetMhz(603.0); // not a multiple of 12.5 MHz
    double q = u.targetMhz();
    EXPECT_NEAR(q, 603.0, u.tdc().resolutionMhz());
    EXPECT_DOUBLE_EQ(q / u.tdc().resolutionMhz(),
                     std::round(q / u.tdc().resolutionMhz()));
}

TEST(Uvfr, DroopStretchesTheClockImmediately)
{
    // The guardband argument (Fig. 9): when the supply dips, the
    // replica oscillator slows the clock *in the same instant*, so the
    // logic never sees a cycle shorter than the voltage supports. A
    // fixed-clock design would keep running at the target frequency —
    // above what the drooped voltage can sustain.
    Uvfr u(defaultCfg());
    u.setTargetMhz(600.0);
    settle(u);
    const double before = u.freqMhz();
    u.injectDroopV(0.1);
    EXPECT_LT(u.freqMhz(), before * 0.9);
    // Safety invariant: delivered clock never exceeds what the
    // present voltage sustains...
    EXPECT_LE(u.freqMhz(), u.oscFreqMhz() + 1e-9);
    // ...while the fixed-clock design would be violating timing.
    EXPECT_GT(u.fixedClockMhz(), u.oscFreqMhz());
}

TEST(Uvfr, LoopRecoversFromDroop)
{
    Uvfr u(defaultCfg());
    u.setTargetMhz(600.0);
    settle(u);
    u.injectDroopV(0.15);
    int steps = settle(u);
    EXPECT_LE(steps, 300);
    EXPECT_NEAR(u.freqMhz(), 600.0, u.tdc().resolutionMhz() * 2.0);
}

TEST(Uvfr, RepeatedDroopsNeverViolateTiming)
{
    // Property sweep: droops of any depth at any operating point keep
    // the delivered clock within the voltage's capability.
    Uvfr u(defaultCfg());
    for (double target : {200.0, 500.0, 800.0}) {
        u.setTargetMhz(target);
        settle(u);
        for (double droop : {0.02, 0.05, 0.1, 0.2}) {
            u.injectDroopV(droop);
            EXPECT_LE(u.freqMhz(), u.oscFreqMhz() + 1e-9)
                << "target " << target << " droop " << droop;
            settle(u);
        }
    }
}

/** Parameterized settling sweep: every catalog tile, several targets. */
class UvfrCatalogSweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{};

TEST_P(UvfrCatalogSweep, SettlesOnEveryTileCurve)
{
    auto [curve_idx, frac] = GetParam();
    const power::PfCurve &curve =
        *power::catalog::all()[static_cast<std::size_t>(curve_idx)];
    UvfrConfig cfg;
    cfg.ro.fMaxMhz = curve.fMax();
    cfg.ro.vNominal = curve.points().back().voltage;
    cfg.ldo.vMax = curve.points().back().voltage;
    Uvfr u(cfg);
    u.setTargetMhz(curve.fMax() * frac);
    int steps = settle(u);
    EXPECT_LE(steps, 400) << curve.name();
    EXPECT_TRUE(u.settled()) << curve.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllTiles, UvfrCatalogSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(0.1, 0.3, 0.5, 0.8, 1.0)));

TEST(Uvfr, InvalidConfigFatal)
{
    UvfrConfig bad = defaultCfg();
    bad.controlPeriod = 0;
    EXPECT_THROW(Uvfr{bad}, sim::FatalError);
}

} // namespace
