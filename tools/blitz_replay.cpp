/**
 * @file
 * blitz-replay: record, replay, diff, and bisect flight-recorder logs.
 *
 *   blitz-replay record <out.blzr> [scenario flags] [--tamper IDX]
 *   blitz-replay info   <log.blzr>
 *   blitz-replay verify <log.blzr> [--threads N]
 *   blitz-replay diff   <a.blzr> <b.blzr>
 *   blitz-replay bisect <a.blzr> <b.blzr> [--context N]
 *
 * `record` runs the scenario on the deterministic sweep harness and
 * writes a self-describing log (the scenario rides in the file
 * header). `verify` re-runs the log's own scenario with a
 * lockstep-armed recorder and reports the first divergent event — by
 * construction this passes at any --threads. `bisect` binary-searches
 * two logs' snapshot epochs and prints the first divergent record with
 * its causal context.
 *
 * Exit codes: 0 = ok / identical / lockstep match; 1 = divergence
 * found; 2 = usage or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "record/replay.hpp"

using namespace blitz;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: blitz-replay <command> ...\n"
        "  record <out.blzr> [--d N] [--drop R] [--dup R]\n"
        "         [--corrupt R] [--crash] [--partition] [--seed S]\n"
        "         [--trials T] [--threads N] [--snapshot-every N]\n"
        "         [--deadline N] [--tamper IDX]\n"
        "  info   <log.blzr>\n"
        "  verify <log.blzr> [--threads N]\n"
        "  diff   <a.blzr> <b.blzr>\n"
        "  bisect <a.blzr> <b.blzr> [--context N]\n");
    return 2;
}

bool
loadLog(const char *path, record::FlightRecorder &rec,
        record::LogHeader &header)
{
    if (record::FlightRecorder::readFile(path, rec, &header))
        return true;
    std::fprintf(stderr, "blitz-replay: cannot read log '%s'\n", path);
    return false;
}

/** Value of --flag NAME at argv[i]; advances i past the value. */
bool
numArg(int argc, char **argv, int &i, const char *name, long long &out)
{
    if (std::strcmp(argv[i], name) != 0)
        return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "blitz-replay: %s needs a value\n", name);
        std::exit(2);
    }
    out = std::atoll(argv[++i]);
    return true;
}

bool
realArg(int argc, char **argv, int &i, const char *name, double &out)
{
    if (std::strcmp(argv[i], name) != 0)
        return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "blitz-replay: %s needs a value\n", name);
        std::exit(2);
    }
    out = std::atof(argv[++i]);
    return true;
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const char *out = argv[0];
    record::ReplayScenario sc;
    sweep::SweepOptions opts;
    long long tamper = -1;
    for (int i = 1; i < argc; ++i) {
        long long v = 0;
        double r = 0.0;
        if (numArg(argc, argv, i, "--d", v))
            sc.d = static_cast<std::uint32_t>(v);
        else if (realArg(argc, argv, i, "--drop", r))
            sc.drop = r;
        else if (realArg(argc, argv, i, "--dup", r))
            sc.duplicate = r;
        else if (realArg(argc, argv, i, "--corrupt", r))
            sc.corrupt = r;
        else if (std::strcmp(argv[i], "--crash") == 0)
            sc.crash = true;
        else if (std::strcmp(argv[i], "--partition") == 0)
            sc.partition = true;
        else if (numArg(argc, argv, i, "--seed", v))
            sc.seed = static_cast<std::uint64_t>(v);
        else if (numArg(argc, argv, i, "--trials", v))
            sc.trials = static_cast<std::uint32_t>(v);
        else if (numArg(argc, argv, i, "--threads", v))
            opts.threads = static_cast<std::size_t>(v);
        else if (numArg(argc, argv, i, "--snapshot-every", v))
            sc.snapshotEvery = static_cast<sim::Tick>(v);
        else if (numArg(argc, argv, i, "--deadline", v))
            sc.deadline = static_cast<sim::Tick>(v);
        else if (numArg(argc, argv, i, "--tamper", v))
            tamper = v;
        else
            return usage();
    }

    record::FlightRecorder rec = record::recordScenario(sc, opts);
    if (tamper >= 0) {
        if (!record::tamperRecord(
                rec, static_cast<std::uint64_t>(tamper))) {
            std::fprintf(stderr,
                         "blitz-replay: --tamper %lld out of range "
                         "(%zu records)\n",
                         tamper, rec.size());
            return 2;
        }
        std::printf("tampered record #%lld\n", tamper);
    }
    if (!rec.writeFile(out, sc.pack())) {
        std::fprintf(stderr, "blitz-replay: cannot write '%s'\n", out);
        return 2;
    }
    std::printf("recorded %zu events (%s) -> %s\n", rec.size(),
                sc.describe().c_str(), out);
    std::printf("digest %016llx\n",
                static_cast<unsigned long long>(rec.digest()));
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 1)
        return usage();
    record::FlightRecorder rec;
    record::LogHeader header{};
    if (!loadLog(argv[0], rec, header))
        return 2;
    const auto sc = record::ReplayScenario::unpack(header);
    std::printf("%s\n", sc.describe().c_str());
    std::printf("%zu records, digest %016llx\n", rec.size(),
                static_cast<unsigned long long>(rec.digest()));
    std::size_t perKind[32] = {};
    for (std::size_t i = 0; i < rec.size(); ++i)
        ++perKind[static_cast<std::size_t>(rec.at(i).kind) % 32];
    for (std::size_t k = 0; k < 32; ++k) {
        if (perKind[k] == 0)
            continue;
        std::printf("  %-13s %zu\n",
                    record::recordKindName(
                        static_cast<record::RecordKind>(k)),
                    perKind[k]);
    }
    return 0;
}

int
cmdVerify(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    record::FlightRecorder ref;
    record::LogHeader header{};
    if (!loadLog(argv[0], ref, header))
        return 2;
    sweep::SweepOptions opts;
    for (int i = 1; i < argc; ++i) {
        long long v = 0;
        if (numArg(argc, argv, i, "--threads", v))
            opts.threads = static_cast<std::size_t>(v);
        else
            return usage();
    }
    const auto sc = record::ReplayScenario::unpack(header);
    std::printf("replaying: %s\n", sc.describe().c_str());
    const auto res = record::replayVerify(ref, sc, opts);
    if (res.match) {
        std::printf("lockstep match: %llu records bit-identical\n",
                    static_cast<unsigned long long>(
                        res.recordsChecked));
        return 0;
    }
    std::printf("DIVERGED at record #%llu (checked %llu)\n",
                static_cast<unsigned long long>(res.divergedAt),
                static_cast<unsigned long long>(res.recordsChecked));
    if (res.divergedAt < ref.size())
        std::printf("  log: %s\n",
                    record::describeRecord(
                        ref.at(static_cast<std::size_t>(
                            res.divergedAt)),
                        res.divergedAt)
                        .c_str());
    return 1;
}

int
cmdDiff(int argc, char **argv)
{
    if (argc != 2)
        return usage();
    record::FlightRecorder a, b;
    record::LogHeader ha{}, hb{};
    if (!loadLog(argv[0], a, ha) || !loadLog(argv[1], b, hb))
        return 2;
    const auto d = record::diffRecordings(a, b);
    if (d.identical) {
        std::printf("identical: %llu records\n",
                    static_cast<unsigned long long>(d.sizeA));
        return 0;
    }
    std::printf("differ at record #%llu (A: %llu records, "
                "B: %llu records)\n",
                static_cast<unsigned long long>(d.firstDiff),
                static_cast<unsigned long long>(d.sizeA),
                static_cast<unsigned long long>(d.sizeB));
    return 1;
}

int
cmdBisect(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    record::FlightRecorder a, b;
    record::LogHeader ha{}, hb{};
    if (!loadLog(argv[0], a, ha) || !loadLog(argv[1], b, hb))
        return 2;
    long long context = 8;
    for (int i = 2; i < argc; ++i) {
        if (!numArg(argc, argv, i, "--context", context))
            return usage();
    }
    const auto res = record::bisectRecordings(
        a, b, static_cast<std::size_t>(context));
    if (!res.diverged) {
        std::printf("identical: %zu records (%llu digest probes)\n",
                    a.size(),
                    static_cast<unsigned long long>(
                        res.epochsCompared));
        return 0;
    }
    std::printf("first divergence: record #%llu (epoch window "
                "[%llu, %llu), %llu digest probes)\n",
                static_cast<unsigned long long>(res.firstDiff),
                static_cast<unsigned long long>(res.windowBegin),
                static_cast<unsigned long long>(res.windowEnd),
                static_cast<unsigned long long>(res.epochsCompared));
    std::printf("%s", res.context.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const char *cmd = argv[1];
    argc -= 2;
    argv += 2;
    if (std::strcmp(cmd, "record") == 0)
        return cmdRecord(argc, argv);
    if (std::strcmp(cmd, "info") == 0)
        return cmdInfo(argc, argv);
    if (std::strcmp(cmd, "verify") == 0)
        return cmdVerify(argc, argv);
    if (std::strcmp(cmd, "diff") == 0)
        return cmdDiff(argc, argv);
    if (std::strcmp(cmd, "bisect") == 0 ||
        std::strcmp(cmd, "--bisect") == 0)
        return cmdBisect(argc, argv);
    return usage();
}
