/**
 * @file
 * blitz-top: render and compare run health reports.
 *
 *   blitz-top record <out.json> [--d N] [--shards K] [--ticks T]
 *                    [--seed S] [--stride N] [--uniform]
 *   blitz-top summary   <health.json>
 *   blitz-top imbalance <health.json>
 *   blitz-top diff      <a.json> <b.json>
 *
 * `record` runs a column-skewed d x d BlitzCoin mesh (all demand and
 * coins parked on the leftmost quarter of the columns, so BSP column
 * bands are deliberately unbalanced) with the superstep profiler
 * attached and writes the run's HealthReport. `summary` prints both
 * sections of a report; `imbalance` renders the per-shard
 * execute/barrier/event table plus the hottest/coldest ratio; `diff`
 * compares two reports' *deterministic* sections key by key — the
 * wallclock section is never part of the verdict.
 *
 * Exit codes: 0 = ok / identical deterministic sections; 1 = diff
 * found differences; 2 = usage or I/O error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fault/chaos.hpp"
#include "trace/health.hpp"
#include "trace/prof.hpp"

using namespace blitz;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: blitz-top <command> ...\n"
        "  record <out.json> [--d N] [--shards K] [--ticks T]\n"
        "         [--seed S] [--stride N] [--uniform]\n"
        "  summary   <health.json>\n"
        "  imbalance <health.json>\n"
        "  diff      <a.json> <b.json>\n");
    return 2;
}

bool
loadReport(const char *path, trace::HealthReport &report)
{
    std::ifstream is(path);
    if (is && report.parse(is))
        return true;
    std::fprintf(stderr, "blitz-top: cannot parse report '%s'\n", path);
    return false;
}

/** Value of --flag NAME at argv[i]; advances i past the value. */
bool
numArg(int argc, char **argv, int &i, const char *name, long long &out)
{
    if (std::strcmp(argv[i], name) != 0)
        return false;
    if (i + 1 >= argc) {
        std::fprintf(stderr, "blitz-top: %s needs a value\n", name);
        std::exit(2);
    }
    out = std::atoll(argv[++i]);
    return true;
}

int
cmdRecord(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const char *out = argv[0];
    long long d = 16;
    long long shards = 4;
    long long ticks = 60'000;
    long long seed = 7001;
    long long stride = 16;
    bool uniform = false;
    for (int i = 1; i < argc; ++i) {
        long long v = 0;
        if (numArg(argc, argv, i, "--d", v))
            d = v;
        else if (numArg(argc, argv, i, "--shards", v))
            shards = v;
        else if (numArg(argc, argv, i, "--ticks", v))
            ticks = v;
        else if (numArg(argc, argv, i, "--seed", v))
            seed = v;
        else if (numArg(argc, argv, i, "--stride", v))
            stride = v;
        else if (std::strcmp(argv[i], "--uniform") == 0)
            uniform = true;
        else
            return usage();
    }
    if (d < 2 || shards < 1 || ticks < 1) {
        std::fprintf(stderr, "blitz-top: bad scenario parameters\n");
        return 2;
    }

    fault::ChaosConfig cc;
    cc.width = static_cast<int>(d);
    cc.height = static_cast<int>(d);
    cc.seedBase = static_cast<std::uint64_t>(seed);
    cc.shards = static_cast<std::uint32_t>(shards);
    fault::ChaosCluster cluster(cc);

    trace::SuperstepProfiler::Options popts;
    popts.sampleStride = static_cast<std::uint32_t>(stride);
    trace::SuperstepProfiler prof(popts);
    if (cluster.shardGroup())
        prof.attach(*cluster.shardGroup());

    // Demand profile: uniform spreads work over every column band;
    // the default skew parks all demand (and the whole coin pool) on
    // the leftmost quarter of the columns, so the left band's shard
    // runs hot while the right bands mostly idle at the barrier.
    const auto n = static_cast<std::size_t>(d * d);
    const auto hotCols =
        std::max<std::size_t>(static_cast<std::size_t>(d) / 4, 1);
    coin::Coins demand = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t col = i % static_cast<std::size_t>(d);
        const coin::Coins m =
            (uniform || col < hotCols) ? 96 : 4;
        cluster.setMax(i, m);
        demand += m;
    }
    const coin::Coins pool = demand / 2;
    std::size_t holders = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (uniform || i % static_cast<std::size_t>(d) < hotCols)
            ++holders;
    std::size_t seen = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!uniform && i % static_cast<std::size_t>(d) >= hotCols)
            continue;
        coin::Coins share = pool / static_cast<coin::Coins>(holders);
        if (seen < static_cast<std::size_t>(
                       pool % static_cast<coin::Coins>(holders)))
            ++share;
        cluster.setHas(i, share);
        ++seen;
    }
    cluster.sealProvision();
    cluster.startAll();
    cluster.eq().runUntil(static_cast<sim::Tick>(ticks));
    cluster.quiesce();

    trace::HealthReport report;
    char label[96];
    std::snprintf(label, sizeof label,
                  "blitz-top record d=%lld shards=%lld ticks=%lld "
                  "seed=%lld%s",
                  d, shards, ticks, seed, uniform ? " uniform" : "");
    report.setRun(label);
    cluster.fillHealth(report);
    if (prof.attached())
        prof.fillHealth(report);

    std::ofstream os(out);
    if (!os) {
        std::fprintf(stderr, "blitz-top: cannot write '%s'\n", out);
        return 2;
    }
    report.writeJson(os);
    std::printf("wrote %s (%zu deterministic, %zu wallclock keys)\n",
                out, report.deterministic().size(),
                report.wallclock().size());
    return 0;
}

void
printEntries(const char *title,
             const std::vector<trace::HealthReport::Entry> &entries)
{
    std::printf("%s (%zu keys)\n", title, entries.size());
    for (const auto &e : entries) {
        if (std::nearbyint(e.second) == e.second &&
            std::fabs(e.second) < 9.007199254740992e15)
            std::printf("  %-40s %lld\n", e.first.c_str(),
                        static_cast<long long>(e.second));
        else
            std::printf("  %-40s %.6g\n", e.first.c_str(), e.second);
    }
}

int
cmdSummary(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    trace::HealthReport report;
    if (!loadReport(argv[0], report))
        return 2;
    std::printf("run: %s\n", report.run().c_str());
    printEntries("deterministic", report.deterministic());
    printEntries("wallclock", report.wallclock());
    return 0;
}

int
cmdImbalance(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    trace::HealthReport report;
    if (!loadReport(argv[0], report))
        return 2;
    const double *shards = report.findDet("prof.shards");
    if (!shards || *shards < 1) {
        std::fprintf(stderr,
                     "blitz-top: no profiler data in '%s' (record "
                     "with --shards >= 1)\n",
                     argv[0]);
        return 2;
    }
    std::printf("run: %s\n", report.run().c_str());
    std::printf("%-8s %12s %12s %14s %12s\n", "shard", "exec_ms",
                "barrier_ms", "events", "inbox");
    const auto count = static_cast<std::uint32_t>(*shards);
    for (std::uint32_t s = 0; s < count; ++s) {
        char key[64];
        std::snprintf(key, sizeof key, "prof/shard%u.exec_ms", s);
        const double *exec = report.findWall(key);
        std::snprintf(key, sizeof key, "prof/shard%u.barrier_ms", s);
        const double *barrier = report.findWall(key);
        std::snprintf(key, sizeof key, "prof/shard%u.events", s);
        const double *events = report.findDet(key);
        std::snprintf(key, sizeof key, "prof/shard%u.inbox", s);
        const double *inbox = report.findDet(key);
        std::printf("%-8u %12.3f %12.3f %14.0f %12.0f\n", s,
                    exec ? *exec : 0.0, barrier ? *barrier : 0.0,
                    events ? *events : 0.0, inbox ? *inbox : 0.0);
    }
    const double *imb = report.findWall("prof.imbalance");
    const double *steps = report.findDet("prof.supersteps");
    const double *cross = report.findDet("prof.cross.events");
    std::printf("supersteps %.0f   cross events %.0f   "
                "imbalance (hottest/coldest exec) %.2fx\n",
                steps ? *steps : 0.0, cross ? *cross : 0.0,
                imb ? *imb : 1.0);
    return 0;
}

int
cmdDiff(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    trace::HealthReport a;
    trace::HealthReport b;
    if (!loadReport(argv[0], a) || !loadReport(argv[1], b))
        return 2;
    const auto diffs = trace::HealthReport::diff(a, b);
    if (diffs.empty()) {
        std::printf("deterministic sections identical (%zu keys)\n",
                    a.deterministic().size());
        return 0;
    }
    std::printf("%zu deterministic difference%s\n", diffs.size(),
                diffs.size() == 1 ? "" : "s");
    for (const auto &e : diffs) {
        if (!e.inA)
            std::printf("  %-40s (absent) -> %.17g\n", e.key.c_str(),
                        e.b);
        else if (!e.inB)
            std::printf("  %-40s %.17g -> (absent)\n", e.key.c_str(),
                        e.a);
        else
            std::printf("  %-40s %.17g -> %.17g\n", e.key.c_str(),
                        e.a, e.b);
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const char *cmd = argv[1];
    argc -= 2;
    argv += 2;
    if (std::strcmp(cmd, "record") == 0)
        return cmdRecord(argc, argv);
    if (std::strcmp(cmd, "summary") == 0)
        return cmdSummary(argc, argv);
    if (std::strcmp(cmd, "imbalance") == 0)
        return cmdImbalance(argc, argv);
    if (std::strcmp(cmd, "diff") == 0)
        return cmdDiff(argc, argv);
    return usage();
}
